//! The line-oriented serving loop, over stdio or a TCP socket.
//!
//! Protocol grammar (one request per line; replies are a single line,
//! tab-separated, starting with an explicit `ok` or `err` status):
//!
//! ```text
//! load <name> <path> [source] register a .bestk snapshot  -> ok loaded <name>
//!                             (with [source]: a corrupt snapshot is
//!                             quarantined and rebuilt    -> ok rebuilt <name>)
//! query <dataset> <query...>  answer one query            -> ok <answer fields>
//! add-edge <dataset> <u> <v>  stage an edge insert        -> ok staged <name> add <u> <v> pending=<k>
//! del-edge <dataset> <u> <v>  stage an edge delete        -> ok staged <name> del <u> <v> pending=<k>
//! commit <dataset>            commit staged mutations     -> ok committed <name> ops=... n=... m=...
//!                                                            kmax=... bestk=<k|-> score=<s|->
//! datasets                    list datasets               -> ok datasets <n> (+ per-row lines)
//! counters                    workload counters           -> ok counters loads=... builds=...
//! metrics                     metrics exposition          -> ok metrics <n> (+ n exposition lines)
//! quit                        graceful shutdown           -> ok bye
//! ```
//!
//! Any failure becomes `err\t<message>` on the same single line — the
//! connection survives bad requests, and a client can script against the
//! first tab-separated token alone. (`metrics` is the one *ok* reply that
//! spans multiple lines: its header declares how many exposition lines
//! follow, so clients can still frame it.) `quit` shuts the whole server
//! down gracefully after the reply is flushed and the connection drained.
//!
//! ## Observability
//!
//! The loop records into the global `bestk_obs` registry: `serve.requests`
//! (total and per `{verb=…}`), `serve.errors` (total and per `{kind=…}`),
//! `serve.shed`, and a `serve.latency_nanos` histogram over admitted
//! requests. See DESIGN.md §12.
//!
//! ## Hardening
//!
//! The loop is built to survive everything the `bestk-faults` chaos suite
//! throws at it:
//!
//! * request handling runs under `catch_unwind`, so a panic anywhere in
//!   dispatch becomes an `err internal error: ...` reply, never process
//!   death;
//! * request lines are capped at [`ServeLimits::max_line_bytes`] — an
//!   over-long line is discarded (to the next newline) and answered with a
//!   typed `err request too large` reply;
//! * admission is gated on [`ServeLimits::max_inflight`]; requests past
//!   the gauge are shed with `err overloaded` instead of queueing;
//! * a connection whose read timeout cannot be configured gets a typed
//!   `err` line and is closed — the accept loop keeps serving;
//! * read errors (timeouts, hangups, injected faults) end the connection,
//!   not the server.
//!
//! This module is the one place in the workspace allowed to touch
//! `std::net` (enforced by the `no-raw-net` lint): the TCP listener binds
//! loopback only, applies a per-connection read timeout, and serves
//! connections sequentially — the engine is a single shared registry, and
//! the workspace's `no-raw-thread` policy keeps thread primitives inside
//! `crates/exec`.

use std::io::{BufRead, BufReader, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener};
use std::time::Duration;

use bestk_exec::ExecPolicy;
use bestk_faults::sites;

use bestk_graph::generators::EdgeOp;

use crate::engine::LoadOutcome;
use crate::error::EngineError;
use crate::query::Query;
use crate::record::ServeRecorder;
use crate::registry::SharedEngine;
use crate::snapshot::RetryPolicy;

/// Bucket bounds (inclusive, nanoseconds) for `serve.latency_nanos`:
/// 1µs … 1s in decades, overflow above. Shared with replay
/// ([`crate::record`]), which re-observes recorded latencies into the
/// same histogram.
pub(crate) const LATENCY_BOUNDS_NANOS: &[u64] = &[
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

/// The protocol verbs, for per-verb request counting (anything else is
/// counted under `{verb="other"}` so label cardinality stays bounded).
const VERBS: &[&str] = &[
    "load", "query", "add-edge", "del-edge", "commit", "datasets", "counters", "metrics", "quit",
];

/// Records one error reply into `serve.errors` (total and per-kind).
fn record_error(kind: &str) {
    let registry = bestk_obs::registry();
    registry.counter("serve.errors").inc();
    registry
        .counter(&format!("serve.errors{{kind=\"{kind}\"}}"))
        .inc();
}

/// What the serving loop should do after a request is answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep serving.
    Continue,
    /// Stop the server gracefully (the reply has already been produced).
    Quit,
}

/// Per-connection safety limits for the serving loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeLimits {
    /// Maximum request-line length in bytes (excluding the newline).
    /// Longer lines are discarded up to the next newline and answered with
    /// a typed `err request too large` reply.
    pub max_line_bytes: usize,
    /// Maximum requests admitted concurrently. The loop itself is
    /// sequential, so the gauge only exceeds 1 if a future transport
    /// overlaps requests — but `0` is a meaningful drain configuration
    /// (shed everything), and the `serve.overload` failpoint drives the
    /// shedding path deterministically in tests.
    pub max_inflight: usize,
}

impl Default for ServeLimits {
    fn default() -> Self {
        ServeLimits {
            max_line_bytes: 64 * 1024,
            max_inflight: 64,
        }
    }
}

/// Handles one request line, returning the reply line (without the
/// trailing newline) and whether the server should keep going.
///
/// Errors never escape as `Err`, and panics never escape at all: every
/// failure — including a contained panic — is rendered into an `err\t...`
/// reply so the loop, and the connection, survive bad input.
pub fn handle_request(engine: &SharedEngine, policy: &ExecPolicy, line: &str) -> (String, Control) {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        dispatch(engine, policy, line)
    }));
    match outcome {
        Ok(Ok((reply, control))) => (reply, control),
        Ok(Err(e)) => {
            record_error(e.kind());
            (format!("err\t{e}"), Control::Continue)
        }
        Err(payload) => {
            record_error("internal");
            (
                format!(
                    "err\t{}",
                    EngineError::Internal(crate::engine::panic_message(payload.as_ref()))
                ),
                Control::Continue,
            )
        }
    }
}

fn dispatch(
    engine: &SharedEngine,
    policy: &ExecPolicy,
    line: &str,
) -> Result<(String, Control), EngineError> {
    let mut tokens = line.split_whitespace();
    let verb = tokens
        .next()
        .ok_or_else(|| EngineError::Protocol("empty request".into()))?;
    match verb {
        "load" => {
            let usage = || EngineError::Protocol("load takes <name> <path> [source]".into());
            let name = tokens.next().ok_or_else(usage)?;
            let path = tokens.next().ok_or_else(usage)?;
            let source = tokens.next();
            if tokens.next().is_some() {
                return Err(usage());
            }
            let outcome = engine.load_snapshot_with_fallback(
                name,
                path,
                source,
                &RetryPolicy::default(),
                policy,
            )?;
            let word = match outcome {
                LoadOutcome::Loaded => "loaded",
                LoadOutcome::Rebuilt => "rebuilt",
            };
            Ok((format!("ok\t{word}\t{name}"), Control::Continue))
        }
        "query" => {
            let dataset = tokens
                .next()
                .ok_or_else(|| EngineError::Protocol("query takes <dataset> <query...>".into()))?;
            let rest: Vec<&str> = tokens.collect();
            if rest.is_empty() {
                return Err(EngineError::Protocol(
                    "query takes <dataset> <query...>".into(),
                ));
            }
            let query = Query::parse(&rest.join(" "))?;
            let answer = engine.query(dataset, &query, policy)?;
            Ok((format!("ok\t{}", answer.to_line()), Control::Continue))
        }
        "add-edge" | "del-edge" => {
            let usage = || EngineError::Protocol(format!("{verb} takes <dataset> <u> <v>"));
            let dataset = tokens.next().ok_or_else(usage)?;
            let u = parse_vertex(tokens.next().ok_or_else(usage)?)?;
            let v = parse_vertex(tokens.next().ok_or_else(usage)?)?;
            if tokens.next().is_some() {
                return Err(usage());
            }
            let (op, word) = if verb == "add-edge" {
                (EdgeOp::Insert(u, v), "add")
            } else {
                (EdgeOp::Delete(u, v), "del")
            };
            let pending = engine.stage_edge(dataset, op)?;
            Ok((
                format!("ok\tstaged\t{dataset}\t{word}\t{u}\t{v}\tpending={pending}"),
                Control::Continue,
            ))
        }
        "commit" => {
            let usage = || EngineError::Protocol("commit takes <dataset>".into());
            let dataset = tokens.next().ok_or_else(usage)?;
            if tokens.next().is_some() {
                return Err(usage());
            }
            let s = engine.commit_edges(dataset, policy)?;
            let (bestk, score) = match &s.best {
                Some(b) => (b.k.to_string(), b.score.to_string()),
                None => ("-".into(), "-".into()),
            };
            Ok((
                format!(
                    "ok\tcommitted\t{dataset}\tops={}\tn={}\tm={}\tkmax={}\tbestk={bestk}\tscore={score}",
                    s.ops, s.vertices, s.edges, s.kmax
                ),
                Control::Continue,
            ))
        }
        "datasets" => {
            if tokens.next().is_some() {
                return Err(EngineError::Protocol("datasets takes no arguments".into()));
            }
            let rows = engine.dataset_rows();
            let mut reply = format!("ok\tdatasets\t{}", rows.len());
            for row in rows {
                reply.push_str(&format!(
                    "\t{}:n={},m={},built={},bytes={}",
                    row.name, row.vertices, row.edges, row.built, row.resident_bytes
                ));
            }
            Ok((reply, Control::Continue))
        }
        "counters" => {
            if tokens.next().is_some() {
                return Err(EngineError::Protocol("counters takes no arguments".into()));
            }
            let c = engine.counters();
            Ok((
                format!(
                    "ok\tcounters\tloads={}\tbuilds={}\tcache_hits={}\tevictions={}\tqueries={}",
                    c.loads, c.builds, c.cache_hits, c.evictions, c.queries
                ),
                Control::Continue,
            ))
        }
        "metrics" => {
            if tokens.next().is_some() {
                return Err(EngineError::Protocol("metrics takes no arguments".into()));
            }
            let rendered = bestk_obs::snapshot().render();
            let mut reply = format!("ok\tmetrics\t{}", rendered.lines().count());
            for line in rendered.lines() {
                reply.push('\n');
                reply.push_str(line);
            }
            Ok((reply, Control::Continue))
        }
        "quit" => {
            if tokens.next().is_some() {
                return Err(EngineError::Protocol("quit takes no arguments".into()));
            }
            Ok(("ok\tbye".into(), Control::Quit))
        }
        other => Err(EngineError::Protocol(format!(
            "unknown request {other:?} (expected \
             load|query|add-edge|del-edge|commit|datasets|counters|metrics|quit)"
        ))),
    }
}

/// Parses a vertex id token for the mutation verbs.
fn parse_vertex(token: &str) -> Result<u32, EngineError> {
    token
        .parse::<u32>()
        .map_err(|_| EngineError::Protocol(format!("bad vertex id {token:?}")))
}

/// Reads one request line, capped at `max` bytes.
///
/// * `Ok(None)` — clean EOF, nothing more to read.
/// * `Ok(Some(Ok(line)))` — a complete line (newline stripped, lossy
///   UTF-8, trailing `\r` removed).
/// * `Ok(Some(Err(_)))` — the line exceeded `max` bytes; the excess has
///   been discarded up to (and including) the next newline so the stream
///   stays line-aligned.
/// * `Err(_)` — a non-retryable read error (`Interrupted` is retried
///   internally).
fn read_capped_line<R: BufRead>(
    reader: &mut R,
    max: usize,
) -> std::io::Result<Option<Result<String, EngineError>>> {
    let mut line: Vec<u8> = Vec::new();
    let mut overflowed = false;
    let mut saw_any = false;
    loop {
        let chunk = match reader.fill_buf() {
            Ok(c) => c,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            // EOF. An unterminated final line still counts as a line.
            if !saw_any {
                return Ok(None);
            }
            break;
        }
        saw_any = true;
        let newline = chunk.iter().position(|&b| b == b'\n');
        let upto = newline.unwrap_or(chunk.len());
        if !overflowed {
            if line.len() + upto <= max {
                line.extend_from_slice(&chunk[..upto]);
            } else {
                overflowed = true;
                line.clear();
            }
        }
        match newline {
            Some(pos) => {
                reader.consume(pos + 1);
                break;
            }
            None => {
                let len = chunk.len();
                reader.consume(len);
            }
        }
    }
    if overflowed {
        return Ok(Some(Err(EngineError::TooLarge { limit: max })));
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    Ok(Some(Ok(String::from_utf8_lossy(&line).into_owned())))
}

/// [`serve_lines_with`] under [`ServeLimits::default`].
pub fn serve_lines<R: BufRead, W: Write>(
    engine: &SharedEngine,
    policy: &ExecPolicy,
    reader: R,
    writer: W,
) -> Result<Control, EngineError> {
    serve_lines_with(engine, policy, reader, writer, &ServeLimits::default())
}

/// Serves requests from any line source to any sink (the stdio transport,
/// and the per-connection body of the TCP transport). Returns `Control::Quit`
/// if the stream asked to shut the whole server down, `Control::Continue`
/// if it simply ended (EOF / timeout / client hangup).
///
/// Every reply is flushed before the next request is read, so on `Quit`
/// the final `ok bye` has already been drained to the client.
pub fn serve_lines_with<R: BufRead, W: Write>(
    engine: &SharedEngine,
    policy: &ExecPolicy,
    reader: R,
    writer: W,
    limits: &ServeLimits,
) -> Result<Control, EngineError> {
    serve_lines_inner(engine, policy, reader, writer, limits, None)
}

/// [`serve_lines_with`] with a [`ServeRecorder`] riding along: every
/// request the engine sees (post-mangle), every reply, the clock readings
/// around each admitted request, and every oversized-line rejection are
/// logged into the recorder, so the session can later be re-driven and
/// diffed byte-for-byte by [`crate::record::replay_recording`].
pub fn serve_lines_recorded<R: BufRead, W: Write>(
    engine: &SharedEngine,
    policy: &ExecPolicy,
    reader: R,
    writer: W,
    limits: &ServeLimits,
    recorder: &mut ServeRecorder,
) -> Result<Control, EngineError> {
    serve_lines_inner(engine, policy, reader, writer, limits, Some(recorder))
}

fn serve_lines_inner<R: BufRead, W: Write>(
    engine: &SharedEngine,
    policy: &ExecPolicy,
    mut reader: R,
    mut writer: W,
    limits: &ServeLimits,
    mut recorder: Option<&mut ServeRecorder>,
) -> Result<Control, EngineError> {
    // Resolved once per serving loop: a loop lives entirely inside one
    // registry epoch, and pre-registering here means a bare `metrics`
    // request (or a `--metrics-dump`) renders the serving metrics even
    // before any traffic has counted.
    let registry = bestk_obs::registry();
    let requests = registry.counter("serve.requests");
    let latency = registry.histogram("serve.latency_nanos", LATENCY_BOUNDS_NANOS);
    let mut inflight: usize = 0;
    loop {
        let line = match read_capped_line(&mut reader, limits.max_line_bytes) {
            Ok(Some(l)) => l,
            Ok(None) => return Ok(Control::Continue),
            // A read timeout or client hangup ends this stream, not the server.
            Err(_) => return Ok(Control::Continue),
        };
        let (reply, control) = match line {
            Err(e) => {
                if let Some(rec) = recorder.as_deref_mut() {
                    rec.oversized();
                }
                record_error(e.kind());
                (format!("err\t{e}"), Control::Continue)
            }
            Ok(mut line) => {
                // The `serve.read` failpoint tears request lines mid-flight;
                // a mangled request must come back as a typed error (or
                // still parse, if the damage missed the grammar).
                bestk_faults::mangle_line(sites::SERVE_READ, &mut line);
                if line.trim().is_empty() {
                    continue;
                }
                // Recorded *after* the mangle: the recording holds the line
                // the engine actually saw, so replay needs no serve.read
                // faults (and strips that site from the reconstructed plan).
                if let Some(rec) = recorder.as_deref_mut() {
                    rec.request(&line);
                }
                requests.inc();
                let verb = line.split_whitespace().next().unwrap_or("");
                let verb = if VERBS.contains(&verb) { verb } else { "other" };
                registry
                    .counter(&format!("serve.requests{{verb=\"{verb}\"}}"))
                    .inc();
                inflight += 1;
                let shed = inflight > limits.max_inflight
                    || bestk_faults::overloaded(sites::SERVE_OVERLOAD);
                let answered = if shed {
                    registry.counter("serve.shed").inc();
                    record_error("overloaded");
                    (
                        format!(
                            "err\t{}",
                            EngineError::Overloaded {
                                limit: limits.max_inflight
                            }
                        ),
                        Control::Continue,
                    )
                } else {
                    let start = bestk_obs::now_nanos();
                    let answered = handle_request(engine, policy, &line);
                    let end = bestk_obs::now_nanos();
                    latency.observe(end.saturating_sub(start));
                    if let Some(rec) = recorder.as_deref_mut() {
                        rec.clock(start);
                        rec.clock(end);
                    }
                    answered
                };
                inflight -= 1;
                answered
            }
        };
        if let Some(rec) = recorder.as_deref_mut() {
            rec.reply(&reply);
        }
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if control == Control::Quit {
            return Ok(Control::Quit);
        }
    }
}

/// Serves connections from an already-bound listener until a client sends
/// `quit`. Connections are handled sequentially; `timeout` bounds each
/// read so a silent client cannot wedge the server forever.
///
/// A connection whose read timeout cannot be configured is answered with a
/// typed `err` line and closed — never silently dropped — and the accept
/// loop keeps serving. On `quit` the final reply is flushed and the
/// connection shut down before the listener stops (drain-on-shutdown).
///
/// Split out from [`serve_tcp`] so tests can bind port 0 and discover the
/// ephemeral port via `TcpListener::local_addr` before starting the loop.
pub fn serve_on_listener(
    engine: &SharedEngine,
    policy: &ExecPolicy,
    listener: &TcpListener,
    timeout: Option<Duration>,
    limits: &ServeLimits,
) -> Result<(), EngineError> {
    serve_on_listener_inner(engine, policy, listener, timeout, limits, None)
}

/// [`serve_on_listener`] with a [`ServeRecorder`] riding along: the
/// sequential connections' traffic is logged into one recording, in
/// arrival order, exactly as [`serve_lines_recorded`] does for a single
/// stream.
pub fn serve_on_listener_recorded(
    engine: &SharedEngine,
    policy: &ExecPolicy,
    listener: &TcpListener,
    timeout: Option<Duration>,
    limits: &ServeLimits,
    recorder: &mut ServeRecorder,
) -> Result<(), EngineError> {
    serve_on_listener_inner(engine, policy, listener, timeout, limits, Some(recorder))
}

fn serve_on_listener_inner(
    engine: &SharedEngine,
    policy: &ExecPolicy,
    listener: &TcpListener,
    timeout: Option<Duration>,
    limits: &ServeLimits,
    mut recorder: Option<&mut ServeRecorder>,
) -> Result<(), EngineError> {
    for stream in listener.incoming() {
        let mut stream = match stream {
            Ok(s) => s,
            Err(_) => continue, // transient accept failure: keep serving
        };
        // The `serve.timeout` failpoint simulates `set_read_timeout`
        // failing (rare, but std documents it can).
        let configured = if let Some(e) = bestk_faults::io_error(sites::SERVE_TIMEOUT) {
            Err(e)
        } else {
            stream.set_read_timeout(timeout)
        };
        if let Err(e) = configured {
            // Surface the failure to the client as a typed single-line
            // error instead of silently dropping the connection, then keep
            // accepting. Serving without a timeout would let a silent
            // client wedge the server.
            let reply = format!("err\t{}\n", EngineError::Io(e));
            let _ = stream.write_all(reply.as_bytes());
            let _ = stream.flush();
            let _ = stream.shutdown(std::net::Shutdown::Both);
            continue;
        }
        let cloned = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => continue,
        };
        // The `serve.read` failpoint also injects socket-level faults
        // (errors, short reads) under the buffered reader.
        let reader = BufReader::new(bestk_faults::FaultyRead::new(sites::SERVE_READ, cloned));
        let control = serve_lines_inner(
            engine,
            policy,
            reader,
            &stream,
            limits,
            recorder.as_deref_mut(),
        )?;
        if control == Control::Quit {
            // Drain-on-shutdown: every reply (including `ok bye`) was
            // flushed by serve_lines_with; close both directions so the
            // client observes EOF rather than a reset.
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return Ok(());
        }
    }
    Ok(())
}

/// Binds `127.0.0.1:port` and serves until a client sends `quit`.
/// Returns the bound address through `on_bound` (called once, before the
/// accept loop starts) so callers can log it.
pub fn serve_tcp(
    engine: &SharedEngine,
    policy: &ExecPolicy,
    port: u16,
    timeout: Option<Duration>,
    limits: &ServeLimits,
    on_bound: impl FnOnce(SocketAddr),
) -> Result<(), EngineError> {
    let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, port))?;
    on_bound(listener.local_addr()?);
    serve_on_listener(engine, policy, &listener, timeout, limits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bestk_graph::generators;

    fn engine_with_fig2() -> SharedEngine {
        let eng = SharedEngine::with_budget(None);
        eng.insert_graph("fig2", generators::paper_figure2());
        eng
    }

    fn ask(engine: &SharedEngine, line: &str) -> (String, Control) {
        handle_request(engine, &ExecPolicy::Sequential, line)
    }

    #[test]
    fn query_requests_answer_with_ok_lines() {
        let eng = engine_with_fig2();
        let (reply, c) = ask(&eng, "query fig2 bestkset ad");
        assert_eq!(reply, "ok\tbestkset\tad\tk=2\tscore=3.1666666666666665");
        assert_eq!(c, Control::Continue);
        let (reply, _) = ask(&eng, "query fig2 stats");
        assert_eq!(reply, "ok\tstats\tn=12\tm=19\tkmax=3\tcores=3");
    }

    #[test]
    fn failures_are_single_line_err_replies() {
        let eng = engine_with_fig2();
        for bad in [
            "",
            "   ",
            "frobnicate",
            "query",
            "query fig2",
            "query nope stats",
            "query fig2 bestkset zz",
            "query fig2 coreof 999",
            "load onlyname",
            "load x /no/such/file.bestk",
            "load x /no/such/file.bestk /no/source.txt extra",
            "add-edge",
            "add-edge fig2 0",
            "add-edge fig2 0 zero",
            "add-edge fig2 0 1 extra",
            "add-edge fig2 0 1",
            "add-edge fig2 3 3",
            "add-edge nope 0 1",
            "del-edge fig2 0 11",
            "commit fig2",
            "commit fig2 extra",
            "commit nope",
            "datasets extra",
            "counters extra",
            "metrics extra",
            "quit now",
        ] {
            let (reply, c) = ask(&eng, bad);
            assert!(reply.starts_with("err\t"), "{bad:?} -> {reply}");
            assert!(!reply.contains('\n'), "{bad:?} -> multi-line reply");
            assert_eq!(c, Control::Continue, "{bad:?} must not kill the server");
        }
    }

    #[test]
    fn mutation_verbs_stage_and_commit() {
        let eng = engine_with_fig2();
        let (reply, c) = ask(&eng, "add-edge fig2 0 11");
        assert_eq!(c, Control::Continue);
        assert_eq!(reply, "ok\tstaged\tfig2\tadd\t0\t11\tpending=1");
        let (reply, _) = ask(&eng, "del-edge fig2 0 1");
        assert_eq!(reply, "ok\tstaged\tfig2\tdel\t0\t1\tpending=2");
        // Queries between stage and commit still see the committed graph.
        let (reply, _) = ask(&eng, "query fig2 stats");
        assert_eq!(reply, "ok\tstats\tn=12\tm=19\tkmax=3\tcores=3");
        let (reply, c) = ask(&eng, "commit fig2");
        assert_eq!(c, Control::Continue);
        assert!(
            reply.starts_with("ok\tcommitted\tfig2\tops=2\tn=12\tm=19\tkmax="),
            "{reply}"
        );
        assert!(reply.contains("\tbestk="), "{reply}");
        assert!(reply.contains("\tscore="), "{reply}");
        // The committed best-k in the reply matches a fresh query.
        let (q, _) = ask(&eng, "query fig2 bestkset ad");
        let k = q.split("\tk=").nth(1).unwrap().split('\t').next().unwrap();
        assert!(reply.contains(&format!("\tbestk={k}\t")), "{reply} vs {q}");
    }

    #[test]
    fn metrics_verb_frames_the_exposition() {
        let eng = engine_with_fig2();
        let (ok, _) = ask(&eng, "query fig2 bestkset ad");
        assert!(ok.starts_with("ok\t"), "{ok}");
        let (reply, c) = ask(&eng, "metrics");
        assert_eq!(c, Control::Continue);
        let mut lines = reply.lines();
        let header = lines.next().unwrap();
        let declared: usize = header
            .strip_prefix("ok\tmetrics\t")
            .expect("metrics header")
            .parse()
            .unwrap();
        let body: Vec<&str> = lines.collect();
        assert_eq!(body.len(), declared, "header must frame the body");
        assert!(declared > 0);
        // Well-formed exposition: every line is `name value`.
        for line in &body {
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty());
            assert!(value.parse::<i64>().is_ok(), "{line}");
        }
        // The phase spans of the best-k pipeline are present.
        assert!(body.iter().any(|l| l.starts_with("phase.peel.calls ")));
        assert!(body.iter().any(|l| l.starts_with("phase.sweep.calls ")));
        assert!(body.iter().any(|l| l.starts_with("phase.select.calls ")));
    }

    #[test]
    fn quit_is_graceful() {
        let eng = engine_with_fig2();
        let (reply, c) = ask(&eng, "quit");
        assert_eq!(reply, "ok\tbye");
        assert_eq!(c, Control::Quit);
    }

    #[test]
    fn datasets_and_counters_render() {
        let eng = engine_with_fig2();
        ask(&eng, "query fig2 stats");
        let (reply, _) = ask(&eng, "datasets");
        assert!(
            reply.starts_with("ok\tdatasets\t1\tfig2:n=12,m=19,built=true"),
            "{reply}"
        );
        let (reply, _) = ask(&eng, "counters");
        assert_eq!(
            reply,
            "ok\tcounters\tloads=1\tbuilds=1\tcache_hits=0\tevictions=0\tqueries=1"
        );
    }

    #[test]
    fn serve_lines_replies_per_request_and_stops_on_quit() {
        let eng = engine_with_fig2();
        let input = b"query fig2 coreof 5\n\nquery fig2 bestkset zz\nquit\nquery fig2 stats\n";
        let mut out = Vec::new();
        let control = serve_lines(&eng, &ExecPolicy::Sequential, &input[..], &mut out).unwrap();
        assert_eq!(control, Control::Quit);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Blank line skipped; nothing served after quit.
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "ok\tcoreof\t5\tcoreness=2");
        assert!(lines[1].starts_with("err\t"));
        assert_eq!(lines[2], "ok\tbye");
    }

    #[test]
    fn serve_lines_eof_means_continue() {
        let eng = engine_with_fig2();
        let mut out = Vec::new();
        let control = serve_lines(
            &eng,
            &ExecPolicy::Sequential,
            &b"query fig2 stats\n"[..],
            &mut out,
        )
        .unwrap();
        assert_eq!(control, Control::Continue);
    }

    #[test]
    fn oversized_lines_get_a_typed_error_and_the_stream_realigns() {
        let eng = engine_with_fig2();
        let limits = ServeLimits {
            max_line_bytes: 32,
            max_inflight: 4,
        };
        let mut input = Vec::new();
        input.extend_from_slice(b"query fig2 stats\n");
        input.extend_from_slice(&vec![b'x'; 500]);
        input.extend_from_slice(b"\nquery fig2 coreof 5\n");
        let mut out = Vec::new();
        let control =
            serve_lines_with(&eng, &ExecPolicy::Sequential, &input[..], &mut out, &limits).unwrap();
        assert_eq!(control, Control::Continue);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert!(lines[0].starts_with("ok\tstats"));
        assert_eq!(lines[1], "err\trequest too large: line exceeds 32 bytes");
        // The request after the oversized one is served normally.
        assert_eq!(lines[2], "ok\tcoreof\t5\tcoreness=2");
    }

    #[test]
    fn a_zero_inflight_limit_sheds_every_request() {
        let eng = engine_with_fig2();
        let limits = ServeLimits {
            max_line_bytes: 1024,
            max_inflight: 0,
        };
        let mut out = Vec::new();
        serve_lines_with(
            &eng,
            &ExecPolicy::Sequential,
            &b"query fig2 stats\nquery fig2 coreof 5\n"[..],
            &mut out,
            &limits,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        for line in text.lines() {
            assert_eq!(line, "err\toverloaded: 0 requests already in flight");
        }
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn injected_overload_sheds_with_a_typed_error() {
        use bestk_faults::{Fault, FaultPlan, SiteSpec};
        let eng = engine_with_fig2();
        let plan = FaultPlan::new(21).site(
            sites::SERVE_OVERLOAD,
            SiteSpec::always(Fault::Overload).with_budget(1),
        );
        bestk_faults::with_plan(&plan, || {
            let mut out = Vec::new();
            serve_lines(
                &eng,
                &ExecPolicy::Sequential,
                &b"query fig2 stats\nquery fig2 stats\n"[..],
                &mut out,
            )
            .unwrap();
            let text = String::from_utf8(out).unwrap();
            let lines: Vec<&str> = text.lines().collect();
            assert_eq!(lines.len(), 2);
            assert!(lines[0].starts_with("err\toverloaded"), "{}", lines[0]);
            // Budget spent: the next request is admitted and answered.
            assert!(lines[1].starts_with("ok\tstats"), "{}", lines[1]);
        });
    }

    #[test]
    fn torn_lines_never_kill_the_stream() {
        use bestk_faults::{Fault, FaultPlan, SiteSpec};
        // Sweep seeds: a mangled request must produce ok or err on every
        // line, and the stream must keep serving afterwards.
        for seed in 0..16 {
            let eng = engine_with_fig2();
            let plan = FaultPlan::new(seed).site(
                sites::SERVE_READ,
                SiteSpec::mixed(vec![Fault::BitFlip, Fault::Truncate, Fault::ShortRead], 0.5),
            );
            bestk_faults::with_plan(&plan, || {
                let mut out = Vec::new();
                let input = b"query fig2 stats\nquery fig2 coreof 5\nquery fig2 bestkset ad\n";
                serve_lines(&eng, &ExecPolicy::Sequential, &input[..], &mut out).unwrap();
                let text = String::from_utf8(out).unwrap();
                for line in text.lines() {
                    assert!(
                        line.starts_with("ok\t") || line.starts_with("err\t"),
                        "seed {seed}: {line}"
                    );
                }
            });
        }
    }

    #[test]
    fn contained_panics_become_internal_errors() {
        use bestk_faults::{Fault, FaultPlan, SiteSpec};
        let eng = engine_with_fig2();
        let plan = FaultPlan::new(2).site(
            sites::EXEC_WORKER,
            SiteSpec::always(Fault::Panic).with_budget(1),
        );
        bestk_faults::with_plan(&plan, || {
            let (reply, c) = handle_request(
                &eng,
                &ExecPolicy::with_threads(2).unwrap(),
                "query fig2 stats",
            );
            assert!(reply.starts_with("err\tinternal error:"), "{reply}");
            assert_eq!(c, Control::Continue);
            // The engine still answers afterwards.
            let (reply, _) = ask(&eng, "query fig2 stats");
            assert_eq!(reply, "ok\tstats\tn=12\tm=19\tkmax=3\tcores=3");
        });
    }

    #[test]
    fn load_with_source_rebuilds_from_a_corrupt_snapshot() {
        let dir = std::env::temp_dir().join("bestk-serve-load-fallback");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("g.bestk");
        let source = dir.join("g.txt");
        let quarantine = dir.join("g.bestk.quarantine");
        std::fs::remove_file(&quarantine).ok();
        let g = generators::paper_figure2();
        bestk_graph::io::write_edge_list_path(&g, &source).unwrap();
        std::fs::write(&snap, b"BESTKSS1 but then garbage").unwrap();

        let eng = SharedEngine::with_budget(None);
        let line = format!(
            "load g {} {}",
            snap.to_str().unwrap(),
            source.to_str().unwrap()
        );
        let (reply, c) = ask(&eng, &line);
        assert_eq!(reply, "ok\trebuilt\tg");
        assert_eq!(c, Control::Continue);
        assert!(quarantine.exists());
        let (reply, _) = ask(&eng, "query g stats");
        assert_eq!(reply, "ok\tstats\tn=12\tm=19\tkmax=3\tcores=3");
        for f in [snap, source, quarantine] {
            std::fs::remove_file(f).ok();
        }
    }
}
