//! The line-oriented serving loop, over stdio or a TCP socket.
//!
//! Protocol grammar (one request per line; replies are a single line,
//! tab-separated, starting with an explicit `ok` or `err` status):
//!
//! ```text
//! load <name> <path>          register a .bestk snapshot  -> ok loaded <name>
//! query <dataset> <query...>  answer one query            -> ok <answer fields>
//! datasets                    list datasets               -> ok datasets <n> (+ per-row lines)
//! counters                    workload counters           -> ok counters loads=... builds=...
//! quit                        graceful shutdown           -> ok bye
//! ```
//!
//! Any failure becomes `err\t<message>` on the same single line — the
//! connection survives bad requests, and a client can script against the
//! first tab-separated token alone. `quit` shuts the whole server down
//! gracefully after the reply is flushed.
//!
//! This module is the one place in the workspace allowed to touch
//! `std::net` (enforced by the `no-raw-net` lint): the TCP listener binds
//! loopback only, applies a per-connection read timeout, and serves
//! connections sequentially — the engine is a single shared registry, and
//! the workspace's `no-raw-thread` policy keeps thread primitives inside
//! `crates/exec`.

use std::io::{BufRead, BufReader, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener};
use std::time::Duration;

use bestk_exec::ExecPolicy;

use crate::engine::Engine;
use crate::error::EngineError;
use crate::query::Query;

/// What the serving loop should do after a request is answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep serving.
    Continue,
    /// Stop the server gracefully (the reply has already been produced).
    Quit,
}

/// Handles one request line, returning the reply line (without the
/// trailing newline) and whether the server should keep going.
///
/// Errors never escape as `Err`: every failure is rendered into an
/// `err\t...` reply so the loop — and the connection — survive bad input.
pub fn handle_request(engine: &mut Engine, policy: &ExecPolicy, line: &str) -> (String, Control) {
    match dispatch(engine, policy, line) {
        Ok((reply, control)) => (reply, control),
        Err(e) => (format!("err\t{e}"), Control::Continue),
    }
}

fn dispatch(
    engine: &mut Engine,
    policy: &ExecPolicy,
    line: &str,
) -> Result<(String, Control), EngineError> {
    let mut tokens = line.split_whitespace();
    let verb = tokens
        .next()
        .ok_or_else(|| EngineError::Protocol("empty request".into()))?;
    match verb {
        "load" => {
            let name = tokens
                .next()
                .ok_or_else(|| EngineError::Protocol("load takes <name> <path>".into()))?;
            let path = tokens
                .next()
                .ok_or_else(|| EngineError::Protocol("load takes <name> <path>".into()))?;
            if tokens.next().is_some() {
                return Err(EngineError::Protocol("load takes <name> <path>".into()));
            }
            engine.load_snapshot(name, path)?;
            Ok((format!("ok\tloaded\t{name}"), Control::Continue))
        }
        "query" => {
            let dataset = tokens
                .next()
                .ok_or_else(|| EngineError::Protocol("query takes <dataset> <query...>".into()))?;
            let rest: Vec<&str> = tokens.collect();
            if rest.is_empty() {
                return Err(EngineError::Protocol(
                    "query takes <dataset> <query...>".into(),
                ));
            }
            let query = Query::parse(&rest.join(" "))?;
            let answer = engine.query(dataset, &query, policy)?;
            Ok((format!("ok\t{}", answer.to_line()), Control::Continue))
        }
        "datasets" => {
            if tokens.next().is_some() {
                return Err(EngineError::Protocol("datasets takes no arguments".into()));
            }
            let rows = engine.dataset_rows();
            let mut reply = format!("ok\tdatasets\t{}", rows.len());
            for row in rows {
                reply.push_str(&format!(
                    "\t{}:n={},m={},built={},bytes={}",
                    row.name, row.vertices, row.edges, row.built, row.resident_bytes
                ));
            }
            Ok((reply, Control::Continue))
        }
        "counters" => {
            if tokens.next().is_some() {
                return Err(EngineError::Protocol("counters takes no arguments".into()));
            }
            let c = engine.counters();
            Ok((
                format!(
                    "ok\tcounters\tloads={}\tbuilds={}\tcache_hits={}\tevictions={}\tqueries={}",
                    c.loads, c.builds, c.cache_hits, c.evictions, c.queries
                ),
                Control::Continue,
            ))
        }
        "quit" => {
            if tokens.next().is_some() {
                return Err(EngineError::Protocol("quit takes no arguments".into()));
            }
            Ok(("ok\tbye".into(), Control::Quit))
        }
        other => Err(EngineError::Protocol(format!(
            "unknown request {other:?} (expected load|query|datasets|counters|quit)"
        ))),
    }
}

/// Serves requests from any line source to any sink (the stdio transport,
/// and the per-connection body of the TCP transport). Returns `Control::Quit`
/// if the stream asked to shut the whole server down, `Control::Continue`
/// if it simply ended (EOF / timeout / client hangup).
pub fn serve_lines<R: BufRead, W: Write>(
    engine: &mut Engine,
    policy: &ExecPolicy,
    reader: R,
    mut writer: W,
) -> Result<Control, EngineError> {
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            // A read timeout or client hangup ends this stream, not the server.
            Err(_) => return Ok(Control::Continue),
        };
        if line.trim().is_empty() {
            continue;
        }
        let (reply, control) = handle_request(engine, policy, &line);
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if control == Control::Quit {
            return Ok(Control::Quit);
        }
    }
    Ok(Control::Continue)
}

/// Serves connections from an already-bound listener until a client sends
/// `quit`. Connections are handled sequentially; `timeout` bounds each
/// read so a silent client cannot wedge the server forever.
///
/// Split out from [`serve_tcp`] so tests can bind port 0 and discover the
/// ephemeral port via `TcpListener::local_addr` before starting the loop.
pub fn serve_on_listener(
    engine: &mut Engine,
    policy: &ExecPolicy,
    listener: &TcpListener,
    timeout: Option<Duration>,
) -> Result<(), EngineError> {
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue, // transient accept failure: keep serving
        };
        if stream.set_read_timeout(timeout).is_err() {
            continue;
        }
        let reader = BufReader::new(match stream.try_clone() {
            Ok(s) => s,
            Err(_) => continue,
        });
        if serve_lines(engine, policy, reader, &stream)? == Control::Quit {
            return Ok(());
        }
    }
    Ok(())
}

/// Binds `127.0.0.1:port` and serves until a client sends `quit`.
/// Returns the bound address through `on_bound` (called once, before the
/// accept loop starts) so callers can log it.
pub fn serve_tcp(
    engine: &mut Engine,
    policy: &ExecPolicy,
    port: u16,
    timeout: Option<Duration>,
    on_bound: impl FnOnce(SocketAddr),
) -> Result<(), EngineError> {
    let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, port))?;
    on_bound(listener.local_addr()?);
    serve_on_listener(engine, policy, &listener, timeout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bestk_graph::generators;

    fn engine_with_fig2() -> Engine {
        let mut eng = Engine::new(None);
        eng.insert_graph("fig2", generators::paper_figure2());
        eng
    }

    fn ask(engine: &mut Engine, line: &str) -> (String, Control) {
        handle_request(engine, &ExecPolicy::Sequential, line)
    }

    #[test]
    fn query_requests_answer_with_ok_lines() {
        let mut eng = engine_with_fig2();
        let (reply, c) = ask(&mut eng, "query fig2 bestkset ad");
        assert_eq!(reply, "ok\tbestkset\tad\tk=2\tscore=3.1666666666666665");
        assert_eq!(c, Control::Continue);
        let (reply, _) = ask(&mut eng, "query fig2 stats");
        assert_eq!(reply, "ok\tstats\tn=12\tm=19\tkmax=3\tcores=3");
    }

    #[test]
    fn failures_are_single_line_err_replies() {
        let mut eng = engine_with_fig2();
        for bad in [
            "",
            "   ",
            "frobnicate",
            "query",
            "query fig2",
            "query nope stats",
            "query fig2 bestkset zz",
            "query fig2 coreof 999",
            "load onlyname",
            "load x /no/such/file.bestk",
            "datasets extra",
            "counters extra",
            "quit now",
        ] {
            let (reply, c) = ask(&mut eng, bad);
            assert!(reply.starts_with("err\t"), "{bad:?} -> {reply}");
            assert!(!reply.contains('\n'), "{bad:?} -> multi-line reply");
            assert_eq!(c, Control::Continue, "{bad:?} must not kill the server");
        }
    }

    #[test]
    fn quit_is_graceful() {
        let mut eng = engine_with_fig2();
        let (reply, c) = ask(&mut eng, "quit");
        assert_eq!(reply, "ok\tbye");
        assert_eq!(c, Control::Quit);
    }

    #[test]
    fn datasets_and_counters_render() {
        let mut eng = engine_with_fig2();
        ask(&mut eng, "query fig2 stats");
        let (reply, _) = ask(&mut eng, "datasets");
        assert!(
            reply.starts_with("ok\tdatasets\t1\tfig2:n=12,m=19,built=true"),
            "{reply}"
        );
        let (reply, _) = ask(&mut eng, "counters");
        assert_eq!(
            reply,
            "ok\tcounters\tloads=1\tbuilds=1\tcache_hits=0\tevictions=0\tqueries=1"
        );
    }

    #[test]
    fn serve_lines_replies_per_request_and_stops_on_quit() {
        let mut eng = engine_with_fig2();
        let input = b"query fig2 coreof 5\n\nquery fig2 bestkset zz\nquit\nquery fig2 stats\n";
        let mut out = Vec::new();
        let control = serve_lines(&mut eng, &ExecPolicy::Sequential, &input[..], &mut out).unwrap();
        assert_eq!(control, Control::Quit);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Blank line skipped; nothing served after quit.
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "ok\tcoreof\t5\tcoreness=2");
        assert!(lines[1].starts_with("err\t"));
        assert_eq!(lines[2], "ok\tbye");
    }

    #[test]
    fn serve_lines_eof_means_continue() {
        let mut eng = engine_with_fig2();
        let mut out = Vec::new();
        let control = serve_lines(
            &mut eng,
            &ExecPolicy::Sequential,
            &b"query fig2 stats\n"[..],
            &mut out,
        )
        .unwrap();
        assert_eq!(control, Control::Continue);
    }
}
