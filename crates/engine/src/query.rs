//! The typed query language and its answers.
//!
//! Query text grammar (whitespace-separated tokens, one query per string):
//!
//! ```text
//! bestkset <metric>     best k-core set under the metric
//! bestcore <metric>     best single connected k-core under the metric
//! profile  <metric>     the per-k score series (paper Figure 5)
//! coreof   <vertex>     coreness of one vertex
//! stats                 dataset statistics
//! ```
//!
//! Metrics are the paper's abbreviations (`ad den cr con mod cc sep td`).
//! Answers render to a stable tab-separated line — the exact bytes the
//! serving loop and the one-shot `bestk query` command emit, so both
//! surfaces can be diffed against each other (and across `--threads`
//! settings; floats are formatted with Rust's shortest-roundtrip `Display`,
//! which is deterministic).

use bestk_core::Metric;

use crate::error::EngineError;

/// A typed request against one dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// The best k-core set `C_k` over all `k` (paper §III).
    BestKSet {
        /// Scoring metric.
        metric: Metric,
    },
    /// The best single connected k-core over all cores (paper §IV).
    BestCore {
        /// Scoring metric.
        metric: Metric,
    },
    /// Every k-core set's score, `k = 0 ..= kmax` (paper Figure 5).
    ScoreProfile {
        /// Scoring metric.
        metric: Metric,
    },
    /// The coreness of one vertex.
    CoreOfVertex {
        /// The vertex id.
        vertex: u32,
    },
    /// Dataset statistics: vertex/edge counts, `kmax`, forest size.
    Stats,
}

impl Query {
    /// Parses one query string per the grammar above. Unknown verbs, bad
    /// metrics, non-numeric vertices, and extra tokens are all
    /// [`EngineError::BadQuery`].
    pub fn parse(text: &str) -> Result<Query, EngineError> {
        let tokens: Vec<&str> = text.split_whitespace().collect();
        let expect_len = |want: usize| -> Result<(), EngineError> {
            if tokens.len() == want {
                Ok(())
            } else {
                Err(EngineError::BadQuery(format!(
                    "{:?} takes {} argument(s), got {}",
                    tokens[0],
                    want - 1,
                    tokens.len() - 1
                )))
            }
        };
        match tokens.first() {
            None => Err(EngineError::BadQuery("empty query".into())),
            Some(&"bestkset") => {
                expect_len(2)?;
                Ok(Query::BestKSet {
                    metric: metric_by_abbrev(tokens[1])?,
                })
            }
            Some(&"bestcore") => {
                expect_len(2)?;
                Ok(Query::BestCore {
                    metric: metric_by_abbrev(tokens[1])?,
                })
            }
            Some(&"profile") => {
                expect_len(2)?;
                Ok(Query::ScoreProfile {
                    metric: metric_by_abbrev(tokens[1])?,
                })
            }
            Some(&"coreof") => {
                expect_len(2)?;
                let vertex: u32 = tokens[1].parse().map_err(|_| {
                    EngineError::BadQuery(format!(
                        "coreof expects a vertex id, got {:?}",
                        tokens[1]
                    ))
                })?;
                Ok(Query::CoreOfVertex { vertex })
            }
            Some(&"stats") => {
                expect_len(1)?;
                Ok(Query::Stats)
            }
            Some(other) => Err(EngineError::BadQuery(format!(
                "unknown query verb {other:?} (expected bestkset|bestcore|profile|coreof|stats)"
            ))),
        }
    }
}

/// Resolves a metric by the paper's abbreviation (`ad`, `den`, ...).
pub fn metric_by_abbrev(abbrev: &str) -> Result<Metric, EngineError> {
    Metric::EXTENDED
        .iter()
        .copied()
        .find(|m| m.abbrev() == abbrev)
        .ok_or_else(|| {
            EngineError::BadQuery(format!(
                "unknown metric {abbrev:?} (expected ad|den|cr|con|mod|cc|sep|td)"
            ))
        })
}

/// The answer to one [`Query`].
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// The best k-core set.
    BestKSet {
        /// Scoring metric.
        metric: Metric,
        /// The winning `k`.
        k: u32,
        /// Its score.
        score: f64,
    },
    /// The best single k-core.
    BestCore {
        /// Scoring metric.
        metric: Metric,
        /// Forest node index of the winner.
        node: u32,
        /// Its `k`.
        k: u32,
        /// Its score.
        score: f64,
        /// Number of vertices in the winning core.
        size: u64,
    },
    /// The per-k score series.
    Profile {
        /// Scoring metric.
        metric: Metric,
        /// `scores[k]` is the score of `C_k`; length `kmax + 1`.
        scores: Vec<f64>,
    },
    /// One vertex's coreness.
    CoreOf {
        /// The queried vertex.
        vertex: u32,
        /// Its coreness.
        coreness: u32,
    },
    /// Dataset statistics.
    Stats {
        /// Number of vertices.
        vertices: u64,
        /// Number of edges.
        edges: u64,
        /// Degeneracy (largest `k` with a non-empty k-core).
        kmax: u32,
        /// Number of core-forest nodes (= distinct k-cores).
        forest_nodes: u64,
    },
    /// The metric was undefined (`NaN`) on every candidate.
    Undefined {
        /// Which query had no defined answer.
        what: &'static str,
    },
}

impl Answer {
    /// Renders the answer as the stable tab-separated reply body (without
    /// the `ok` status token, which the transport prepends).
    pub fn to_line(&self) -> String {
        match self {
            Answer::BestKSet { metric, k, score } => {
                format!("bestkset\t{}\tk={k}\tscore={score}", metric.abbrev())
            }
            Answer::BestCore {
                metric,
                node,
                k,
                score,
                size,
            } => format!(
                "bestcore\t{}\tnode={node}\tk={k}\tscore={score}\tsize={size}",
                metric.abbrev()
            ),
            Answer::Profile { metric, scores } => {
                let series: Vec<String> = scores.iter().map(|s| s.to_string()).collect();
                format!("profile\t{}\t{}", metric.abbrev(), series.join(","))
            }
            Answer::CoreOf { vertex, coreness } => {
                format!("coreof\t{vertex}\tcoreness={coreness}")
            }
            Answer::Stats {
                vertices,
                edges,
                kmax,
                forest_nodes,
            } => format!("stats\tn={vertices}\tm={edges}\tkmax={kmax}\tcores={forest_nodes}"),
            Answer::Undefined { what } => format!("undefined\t{what}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb() {
        assert_eq!(
            Query::parse("bestkset ad").unwrap(),
            Query::BestKSet {
                metric: Metric::AverageDegree
            }
        );
        assert_eq!(
            Query::parse("bestcore cc").unwrap(),
            Query::BestCore {
                metric: Metric::ClusteringCoefficient
            }
        );
        assert_eq!(
            Query::parse("profile mod").unwrap(),
            Query::ScoreProfile {
                metric: Metric::Modularity
            }
        );
        assert_eq!(
            Query::parse("coreof 17").unwrap(),
            Query::CoreOfVertex { vertex: 17 }
        );
        assert_eq!(Query::parse("  stats  ").unwrap(), Query::Stats);
    }

    #[test]
    fn rejects_malformed_queries() {
        for bad in [
            "",
            "   ",
            "bestkset",
            "bestkset zz",
            "bestkset ad extra",
            "coreof notanumber",
            "coreof -1",
            "stats now",
            "frobnicate ad",
        ] {
            let err = Query::parse(bad).unwrap_err();
            assert!(matches!(err, EngineError::BadQuery(_)), "{bad:?}: {err}");
        }
    }

    #[test]
    fn answers_render_tab_separated() {
        let a = Answer::BestKSet {
            metric: Metric::AverageDegree,
            k: 2,
            score: 3.5,
        };
        assert_eq!(a.to_line(), "bestkset\tad\tk=2\tscore=3.5");
        let a = Answer::Stats {
            vertices: 12,
            edges: 19,
            kmax: 3,
            forest_nodes: 3,
        };
        assert_eq!(a.to_line(), "stats\tn=12\tm=19\tkmax=3\tcores=3");
        let a = Answer::Profile {
            metric: Metric::CutRatio,
            scores: vec![1.0, 0.5],
        };
        assert_eq!(a.to_line(), "profile\tcr\t1,0.5");
    }

    #[test]
    fn float_rendering_round_trips() {
        // Display uses the shortest round-trip form, so rendered scores
        // parse back to the exact same bits — the property the thread-count
        // diff jobs rely on.
        for x in [1.0 / 3.0, 2.0 * 19.0 / 12.0, f64::INFINITY] {
            let s = format!("{x}");
            assert_eq!(s.parse::<f64>().unwrap().to_bits(), x.to_bits());
        }
    }
}
