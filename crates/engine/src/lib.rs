//! Persistent best-k index snapshots and a multi-dataset query engine.
//!
//! This crate turns the paper's one-shot pipeline (read graph → peel →
//! order → profile → answer) into a serving system:
//!
//! - [`snapshot`] — a versioned, checksummed on-disk `.bestk` format
//!   persisting the CSR graph plus every derived index (coreness, Alg. 1
//!   ordering and position tags, the Alg. 4 core forest, and the per-k
//!   primary-value profiles), so best-k queries on a warm dataset skip the
//!   `O(m^1.5)` preprocessing entirely.
//! - [`Engine`] — a registry of named datasets under a configurable memory
//!   budget with LRU artifact eviction, lazy first-touch builds, and
//!   build/cache-hit/eviction counters.
//! - [`SharedEngine`] — the engine behind a mutex with a strict lock
//!   discipline: snapshot I/O, artifact builds, and batch answering all
//!   run outside the registry lock (enforced by `bestk-analyze`'s
//!   `lock-held-io` / `lock-held-dispatch` passes).
//! - [`serve`] — a line-oriented request/response loop over stdio or a
//!   loopback TCP listener (the one `std::net` user the workspace's
//!   `no-raw-net` lint permits), running against the shared registry.
//! - [`record`] — deterministic serve record/replay: a `.bestkrec` file
//!   captures a session's requests, replies, clock readings, and fault
//!   spec, and replays byte-for-byte against a fresh engine at any thread
//!   count.
//! - [`mutate`] — edge mutations under a stage → commit → compact
//!   protocol: ops are validated against a `bestk-delta` overlay,
//!   write-ahead-logged beside the snapshot, folded into an incrementally
//!   maintained best-k index at commit, and compacted back into a v2
//!   snapshot once enough commits accumulate.
//!
//! Query answers are rendered to stable tab-separated lines and batches
//! run through [`bestk_exec::ExecPolicy`] with an ordered chunk merge, so
//! output is bit-identical at every `--threads` setting.

// Deny rather than forbid: the `mmap` module carries the workspace's one
// scoped `#[allow(unsafe_code)]` for its two FFI calls; everything else in
// the crate still refuses unsafe at compile time.
// bestk-analyze: allow-file(forbid-unsafe) — deny + the mmap module's
// audited scoped allowance replaces the blanket forbid.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod engine;
pub mod error;
pub mod mmap;
pub mod mutate;
pub mod query;
pub mod record;
pub mod registry;
pub mod serve;
pub mod snapshot;
pub mod snapv2;
pub mod store;

pub use dataset::{Artifacts, Dataset};
pub use engine::{Counters, DatasetRow, Engine, LoadOutcome};
pub use error::EngineError;
pub use mutate::{CommitSummary, DeltaSlot, COMPACT_OPS};
pub use query::{metric_by_abbrev, Answer, Query};
pub use record::{
    replay_path as replay_recording_path, Mismatch, ReplayReport, ServeRecorder, RECORD_MAGIC,
};
pub use registry::SharedEngine;
pub use serve::{
    handle_request, serve_lines, serve_lines_recorded, serve_lines_with, serve_on_listener,
    serve_on_listener_recorded, serve_tcp, Control, ServeLimits,
};
pub use snapshot::{
    load_path as load_snapshot_path, load_path_with_retry, save_path as save_snapshot_path,
    save_path_with_retry, RetryPolicy,
};
pub use snapv2::{open as open_snapshot_v2, save_path as save_snapshot_v2_path, MappedIndex};
pub use store::GraphStore;
