//! Deterministic serve record/replay (`.bestkrec`, magic `BESTKREC1`).
//!
//! A [`ServeRecorder`] rides inside the serving loop
//! ([`crate::serve::serve_lines_recorded`]) and logs everything the loop's
//! behaviour depends on: the session limits, the installed `BESTK_FAULTS`
//! spec, every request line *as the engine saw it* (post-mangle), every
//! reply byte, the two clock readings around each admitted request, and
//! oversized-line rejections. [`replay_path`] then re-drives the requests
//! through a fresh [`SharedEngine`] under the reconstructed fault plan and
//! diffs every reply byte-for-byte — a recorded session is a portable,
//! self-verifying regression artifact.
//!
//! ## File layout
//!
//! WAL-style length-framed, checksummed records:
//!
//! ```text
//! file    := magic frame*
//! magic   := "BESTKREC1"
//! frame   := len:u32le payload checksum:u64le    (checksum = fnv1a64(payload))
//! payload := 0x01 max_line:u64le max_inflight:u64le spec_len:u32le spec
//!          | 0x02 request-line utf-8                (post-mangle)
//!          | 0x03 reply utf-8                       (may span lines: metrics)
//!          | 0x04 reading:u64le                     (one clock observation)
//!          | 0x05                                   (oversized line rejected)
//!          | 0x06 file_checksum:u64le               (fnv1a64 of all prior bytes)
//! ```
//!
//! The meta frame (0x01) must come first and the trailer (0x06) last. Per
//! admitted request the sequence is `request, clock, clock, reply`; a shed
//! request records `request, reply`; an oversized line records
//! `oversized, reply`.
//!
//! ## Determinism contract
//!
//! Replay strips the `serve.read` site from the reconstructed plan —
//! recorded lines are already post-mangle, and per-site fault streams are
//! seeded independently, so removing one site leaves every other site's
//! draw sequence intact. The overload check re-runs with the same
//! short-circuit shape as the live loop, so `serve.overload` draws line up
//! one-to-one. Two caveats, enforced by policy rather than code: `metrics`
//! replies embed timing-dependent counters and do not replay stably, and a
//! session whose `load` adopted a write-ahead log must have the sidecar
//! restored to its pre-record state before replaying (DESIGN.md §16).

use std::path::Path;

use bestk_exec::ExecPolicy;
use bestk_faults::sites;

use crate::error::EngineError;
use crate::registry::SharedEngine;
use crate::serve::{handle_request, LATENCY_BOUNDS_NANOS};
use crate::snapshot::fnv1a;

/// Magic bytes opening every serve recording.
pub const RECORD_MAGIC: &[u8; 9] = b"BESTKREC1";

const TAG_META: u8 = 0x01;
const TAG_REQUEST: u8 = 0x02;
const TAG_REPLY: u8 = 0x03;
const TAG_CLOCK: u8 = 0x04;
const TAG_OVERSIZED: u8 = 0x05;
const TAG_TRAILER: u8 = 0x06;

fn frame(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.extend_from_slice(&bestk_graph::cast::u32_of(payload.len()).to_le_bytes());
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&fnv1a(payload).to_le_bytes());
}

/// Captures one serving session into an in-memory `.bestkrec` image. The
/// serving loop calls the hooks; [`finish`](Self::finish) (or
/// [`save`](Self::save)) seals the image with the trailer checksum.
#[derive(Debug)]
pub struct ServeRecorder {
    buf: Vec<u8>,
}

impl ServeRecorder {
    /// Starts a recording: the session's limits plus the fault spec the
    /// session runs under (empty when no faults are installed). The faults
    /// crate exposes no accessor for the installed plan, so the caller
    /// passes the spec it installed — the CLI forwards `BESTK_FAULTS`,
    /// tests forward what they gave `with_plan`.
    pub fn new(limits: &crate::serve::ServeLimits, fault_spec: &str) -> ServeRecorder {
        let mut buf = RECORD_MAGIC.to_vec();
        let mut meta = vec![TAG_META];
        meta.extend_from_slice(&(limits.max_line_bytes as u64).to_le_bytes());
        meta.extend_from_slice(&(limits.max_inflight as u64).to_le_bytes());
        meta.extend_from_slice(&bestk_graph::cast::u32_of(fault_spec.len()).to_le_bytes());
        meta.extend_from_slice(fault_spec.as_bytes());
        frame(&mut buf, &meta);
        ServeRecorder { buf }
    }

    /// Logs one request line exactly as the engine saw it (post-mangle).
    pub fn request(&mut self, line: &str) {
        let mut p = vec![TAG_REQUEST];
        p.extend_from_slice(line.as_bytes());
        frame(&mut self.buf, &p);
    }

    /// Logs one reply (without the trailing newline the transport adds).
    pub fn reply(&mut self, reply: &str) {
        let mut p = vec![TAG_REPLY];
        p.extend_from_slice(reply.as_bytes());
        frame(&mut self.buf, &p);
    }

    /// Logs one clock observation (engine-visible nondeterminism).
    pub fn clock(&mut self, nanos: u64) {
        let mut p = vec![TAG_CLOCK];
        p.extend_from_slice(&nanos.to_le_bytes());
        frame(&mut self.buf, &p);
    }

    /// Logs an oversized-line rejection (the line itself was discarded by
    /// the transport and never reached the engine).
    pub fn oversized(&mut self) {
        frame(&mut self.buf, &[TAG_OVERSIZED]);
    }

    /// Seals the recording: appends the whole-file checksum trailer and
    /// returns the image.
    pub fn finish(mut self) -> Vec<u8> {
        let sum = fnv1a(&self.buf);
        let mut p = vec![TAG_TRAILER];
        p.extend_from_slice(&sum.to_le_bytes());
        frame(&mut self.buf, &p);
        self.buf
    }

    /// [`finish`](Self::finish), written to `path`.
    pub fn save<P: AsRef<Path>>(self, path: P) -> Result<(), EngineError> {
        std::fs::write(path, self.finish())?;
        Ok(())
    }
}

/// One recorded loop iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Entry {
    /// A request the engine saw: the line, the clock readings around its
    /// handling (empty for a shed request, start/end for an admitted one),
    /// and the reply.
    Request {
        /// The request line, post-mangle.
        line: String,
        /// Clock readings (0 = shed before handling, 2 = admitted).
        clocks: Vec<u64>,
        /// The reply line(s), without the trailing newline.
        reply: String,
    },
    /// An oversized line the transport discarded, and the typed rejection
    /// it answered with.
    Oversized {
        /// The `err request too large` reply.
        reply: String,
    },
}

/// A decoded `.bestkrec` image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recording {
    /// The session's per-line byte cap.
    pub max_line_bytes: usize,
    /// The session's admission limit.
    pub max_inflight: usize,
    /// The `BESTK_FAULTS` spec the session ran under (empty = none).
    pub fault_spec: String,
    /// The session's loop iterations, in order.
    pub entries: Vec<Entry>,
}

/// Raw frames decoded off the wire, before sequence grouping. The meta
/// frame is held separately — it configures the session rather than
/// belonging to any entry.
enum Event {
    Request(String),
    Reply(String),
    Clock(u64),
    Oversized,
}

fn u64_at(payload: &[u8], off: usize, section: &'static str) -> Result<u64, EngineError> {
    let bytes = payload
        .get(off..off + 8)
        .ok_or(EngineError::Truncated { section })?;
    let mut b = [0u8; 8];
    b.copy_from_slice(bytes);
    Ok(u64::from_le_bytes(b))
}

fn utf8(bytes: &[u8]) -> Result<String, EngineError> {
    String::from_utf8(bytes.to_vec())
        .map_err(|_| EngineError::BadSnapshot("recording text is not utf-8".into()))
}

/// Decodes and validates a `.bestkrec` image: magic, per-frame checksums,
/// the whole-file trailer checksum, the meta-first/trailer-last framing,
/// and the per-entry event grammar. Every defect is a typed error.
pub fn decode_recording(bytes: &[u8]) -> Result<Recording, EngineError> {
    if bytes.len() < RECORD_MAGIC.len() || &bytes[..RECORD_MAGIC.len()] != RECORD_MAGIC {
        return Err(EngineError::BadMagic);
    }
    let mut off = RECORD_MAGIC.len();
    let mut events: Vec<Event> = Vec::new();
    let mut meta: Option<(usize, usize, String)> = None;
    let mut sealed = false;
    while off < bytes.len() {
        if sealed {
            return Err(EngineError::TrailingBytes);
        }
        let len_bytes = bytes.get(off..off + 4).ok_or(EngineError::Truncated {
            section: "record frame",
        })?;
        let len =
            u32::from_le_bytes([len_bytes[0], len_bytes[1], len_bytes[2], len_bytes[3]]) as usize;
        let payload = bytes
            .get(off + 4..off + 4 + len)
            .ok_or(EngineError::Truncated {
                section: "record payload",
            })?;
        let sum = u64_at(bytes, off + 4 + len, "record checksum")?;
        if sum != fnv1a(payload) {
            return Err(EngineError::ChecksumMismatch {
                section: "record payload",
            });
        }
        let tag = *payload.first().ok_or(EngineError::Truncated {
            section: "record tag",
        })?;
        match tag {
            TAG_META => {
                if meta.is_some() || !events.is_empty() {
                    return Err(EngineError::BadSnapshot(
                        "meta frame must come first, once".into(),
                    ));
                }
                let max_line = u64_at(payload, 1, "record meta")? as usize;
                let max_inflight = u64_at(payload, 9, "record meta")? as usize;
                let spec_len_bytes = payload.get(17..21).ok_or(EngineError::Truncated {
                    section: "record meta",
                })?;
                let spec_len = u32::from_le_bytes([
                    spec_len_bytes[0],
                    spec_len_bytes[1],
                    spec_len_bytes[2],
                    spec_len_bytes[3],
                ]) as usize;
                let spec = payload
                    .get(21..21 + spec_len)
                    .ok_or(EngineError::Truncated {
                        section: "record meta",
                    })?;
                if payload.len() != 21 + spec_len {
                    return Err(EngineError::BadSnapshot("meta frame has slack".into()));
                }
                meta = Some((max_line, max_inflight, utf8(spec)?));
            }
            TAG_REQUEST => events.push(Event::Request(utf8(&payload[1..])?)),
            TAG_REPLY => events.push(Event::Reply(utf8(&payload[1..])?)),
            TAG_CLOCK => events.push(Event::Clock(u64_at(payload, 1, "record clock")?)),
            TAG_OVERSIZED => {
                if payload.len() != 1 {
                    return Err(EngineError::BadSnapshot("oversized frame has slack".into()));
                }
                events.push(Event::Oversized);
            }
            TAG_TRAILER => {
                let declared = u64_at(payload, 1, "record trailer")?;
                if declared != fnv1a(&bytes[..off]) {
                    return Err(EngineError::ChecksumMismatch {
                        section: "record trailer",
                    });
                }
                sealed = true;
            }
            _ => {
                return Err(EngineError::BadSnapshot(format!(
                    "unknown record tag 0x{tag:02x}"
                )))
            }
        }
        off += 4 + len + 8;
    }
    let (max_line_bytes, max_inflight, fault_spec) =
        meta.ok_or(EngineError::MissingSection("record meta"))?;
    if !sealed {
        return Err(EngineError::Truncated {
            section: "record trailer",
        });
    }
    // Group the flat event stream into loop iterations.
    let mut entries = Vec::new();
    let mut it = events.into_iter().peekable();
    while let Some(ev) = it.next() {
        match ev {
            Event::Oversized => match it.next() {
                Some(Event::Reply(reply)) => entries.push(Entry::Oversized { reply }),
                _ => {
                    return Err(EngineError::BadSnapshot(
                        "oversized frame not followed by its reply".into(),
                    ))
                }
            },
            Event::Request(line) => {
                let mut clocks = Vec::new();
                while let Some(Event::Clock(_)) = it.peek() {
                    if let Some(Event::Clock(t)) = it.next() {
                        clocks.push(t);
                    }
                }
                if !matches!(clocks.len(), 0 | 2) {
                    return Err(EngineError::BadSnapshot(format!(
                        "request carries {} clock readings (want 0 or 2)",
                        clocks.len()
                    )));
                }
                match it.next() {
                    Some(Event::Reply(reply)) => entries.push(Entry::Request {
                        line,
                        clocks,
                        reply,
                    }),
                    _ => {
                        return Err(EngineError::BadSnapshot(
                            "request not followed by its reply".into(),
                        ))
                    }
                }
            }
            _ => {
                return Err(EngineError::BadSnapshot(
                    "reply or clock outside a request entry".into(),
                ))
            }
        }
    }
    Ok(Recording {
        max_line_bytes,
        max_inflight,
        fault_spec,
        entries,
    })
}

/// One replay divergence: what the recording holds versus what the
/// re-driven engine produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Zero-based entry index in the recording.
    pub index: usize,
    /// The request line (empty for an oversized-line entry).
    pub line: String,
    /// The recorded reply.
    pub recorded: String,
    /// The reply the replay produced.
    pub replayed: String,
}

/// The outcome of one replay run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Entries re-driven.
    pub requests: usize,
    /// Entries whose replies matched byte-for-byte.
    pub matched: usize,
    /// Every divergence, in entry order.
    pub mismatches: Vec<Mismatch>,
}

impl ReplayReport {
    /// Whether every reply matched.
    pub fn clean(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Re-drives a decoded recording through `engine` and diffs every reply
/// byte-for-byte. The recorded fault plan is reconstructed with the
/// `serve.read` site stripped (recorded lines are already post-mangle);
/// recorded clock readings replay into the `serve.latency_nanos` histogram
/// so even the latency telemetry reproduces.
pub fn replay_recording(
    recording: &Recording,
    engine: &SharedEngine,
    policy: &ExecPolicy,
) -> Result<ReplayReport, EngineError> {
    let drive = || -> ReplayReport {
        let registry = bestk_obs::registry();
        let latency = registry.histogram("serve.latency_nanos", LATENCY_BOUNDS_NANOS);
        let mut report = ReplayReport {
            requests: 0,
            matched: 0,
            mismatches: Vec::new(),
        };
        for (index, entry) in recording.entries.iter().enumerate() {
            report.requests += 1;
            let (line, recorded, replayed) = match entry {
                Entry::Oversized { reply } => {
                    // The transport rejected the line before the engine saw
                    // it; the reply is a pure function of the limit.
                    let expect = format!(
                        "err\t{}",
                        EngineError::TooLarge {
                            limit: recording.max_line_bytes
                        }
                    );
                    (String::new(), reply.clone(), expect)
                }
                Entry::Request {
                    line,
                    clocks,
                    reply,
                } => {
                    // Same shape (and short-circuit) as the live loop, so
                    // the serve.overload draw sequence lines up exactly.
                    let shed = 1 > recording.max_inflight
                        || bestk_faults::overloaded(sites::SERVE_OVERLOAD);
                    let got = if shed {
                        format!(
                            "err\t{}",
                            EngineError::Overloaded {
                                limit: recording.max_inflight
                            }
                        )
                    } else {
                        let (got, _control) = handle_request(engine, policy, line);
                        if let [start, end] = clocks[..] {
                            latency.observe(end.saturating_sub(start));
                        }
                        got
                    };
                    (line.clone(), reply.clone(), got)
                }
            };
            if recorded == replayed {
                report.matched += 1;
            } else {
                report.mismatches.push(Mismatch {
                    index,
                    line,
                    recorded,
                    replayed,
                });
            }
        }
        report
    };
    if recording.fault_spec.is_empty() {
        return Ok(drive());
    }
    let plan = bestk_faults::FaultPlan::parse(&recording.fault_spec)
        .map_err(EngineError::BadSnapshot)?
        .without_site(sites::SERVE_READ);
    Ok(bestk_faults::with_plan(&plan, drive))
}

/// Loads, decodes, and replays the `.bestkrec` at `path` — the CLI's
/// `bestk replay` entry point, and the only corpus-file decode path
/// outside `crates/fuzz` (see the `no-raw-corpus-io` lint).
pub fn replay_path<P: AsRef<Path>>(
    path: P,
    engine: &SharedEngine,
    policy: &ExecPolicy,
) -> Result<ReplayReport, EngineError> {
    let bytes = std::fs::read(path)?;
    let recording = decode_recording(&bytes)?;
    replay_recording(&recording, engine, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::{serve_lines_recorded, ServeLimits};
    use bestk_graph::generators;

    fn policy() -> ExecPolicy {
        ExecPolicy::Sequential
    }

    fn fig2_engine() -> SharedEngine {
        let eng = SharedEngine::with_budget(None);
        eng.insert_graph("fig2", generators::paper_figure2());
        eng
    }

    fn record_session(input: &[u8], limits: &ServeLimits, spec: &str) -> Vec<u8> {
        let eng = fig2_engine();
        let mut recorder = ServeRecorder::new(limits, spec);
        let mut out = Vec::new();
        serve_lines_recorded(&eng, &policy(), input, &mut out, limits, &mut recorder).unwrap();
        recorder.finish()
    }

    #[test]
    fn a_plain_session_round_trips_and_replays_clean() {
        let limits = ServeLimits::default();
        let input =
            b"query fig2 stats\nadd-edge fig2 0 11\ndel-edge fig2 0 1\ncommit fig2\nquery fig2 bestkset ad\nquit\n";
        let image = record_session(input, &limits, "");
        let rec = decode_recording(&image).unwrap();
        assert_eq!(rec.max_line_bytes, limits.max_line_bytes);
        assert_eq!(rec.max_inflight, limits.max_inflight);
        assert_eq!(rec.fault_spec, "");
        assert_eq!(rec.entries.len(), 6);
        for threads in [1, 2, 4] {
            let eng = fig2_engine();
            let policy = ExecPolicy::with_threads(threads).unwrap();
            let report = replay_recording(&rec, &eng, &policy).unwrap();
            assert!(report.clean(), "threads {threads}: {:?}", report.mismatches);
            assert_eq!((report.requests, report.matched), (6, 6));
        }
    }

    #[test]
    fn recorded_sheds_and_oversized_lines_replay_exactly() {
        use bestk_faults::{Fault, FaultPlan, SiteSpec};
        let limits = ServeLimits {
            max_line_bytes: 32,
            max_inflight: 4,
        };
        let spec = "seed=21;serve.overload=overload#1";
        let mut input = Vec::new();
        input.extend_from_slice(b"query fig2 stats\n"); // shed by the fault
        input.extend_from_slice(&[b'x'; 64]); // oversized
        input.extend_from_slice(b"\nquery fig2 coreof 5\nquit\n");
        let plan = FaultPlan::new(21).site(
            sites::SERVE_OVERLOAD,
            SiteSpec::always(Fault::Overload).with_budget(1),
        );
        let image = bestk_faults::with_plan(&plan, || record_session(&input, &limits, spec));
        let rec = decode_recording(&image).unwrap();
        assert_eq!(rec.entries.len(), 4);
        assert!(
            matches!(&rec.entries[0], Entry::Request { clocks, reply, .. }
            if clocks.is_empty() && reply.starts_with("err\toverloaded"))
        );
        assert!(matches!(&rec.entries[1], Entry::Oversized { reply }
            if reply == "err\trequest too large: line exceeds 32 bytes"));
        let eng = fig2_engine();
        let report = replay_recording(&rec, &eng, &policy()).unwrap();
        assert!(report.clean(), "{:?}", report.mismatches);
    }

    #[test]
    fn replay_reports_divergence_instead_of_pretending() {
        let limits = ServeLimits::default();
        let image = record_session(b"query fig2 stats\nquit\n", &limits, "");
        let rec = decode_recording(&image).unwrap();
        // Replaying against an engine with a *different* graph diverges on
        // the query but still matches the quit.
        let eng = SharedEngine::with_budget(None);
        eng.insert_graph("fig2", generators::erdos_renyi_gnm(8, 12, 3));
        let report = replay_recording(&rec, &eng, &policy()).unwrap();
        assert_eq!(report.requests, 2);
        assert_eq!(report.matched, 1);
        assert_eq!(report.mismatches.len(), 1);
        let m = &report.mismatches[0];
        assert_eq!(m.index, 0);
        assert_eq!(m.line, "query fig2 stats");
        assert_ne!(m.recorded, m.replayed);
    }

    #[test]
    fn decode_rejects_every_byte_level_defect() {
        let limits = ServeLimits::default();
        let image = record_session(b"query fig2 stats\nquit\n", &limits, "");
        assert!(decode_recording(&image).is_ok());

        // Bad magic.
        let mut bad = image.clone();
        bad[0] ^= 0xff;
        assert!(matches!(decode_recording(&bad), Err(EngineError::BadMagic)));
        assert!(matches!(decode_recording(b""), Err(EngineError::BadMagic)));

        // A flipped payload byte fails that frame's checksum.
        let mut bad = image.clone();
        let mid = RECORD_MAGIC.len() + 30;
        bad[mid] ^= 0x01;
        assert!(matches!(
            decode_recording(&bad),
            Err(EngineError::ChecksumMismatch { .. })
        ));

        // Truncation anywhere is typed, never a panic.
        for cut in 0..image.len() {
            let err = decode_recording(&image[..cut]);
            assert!(err.is_err(), "cut={cut} must not decode");
        }

        // Bytes after the trailer are trailing bytes.
        let mut bad = image.clone();
        bad.push(0x00);
        assert!(matches!(
            decode_recording(&bad),
            Err(EngineError::TrailingBytes)
        ));

        // A recording missing its trailer is truncated.
        let unsealed = {
            let mut r = ServeRecorder::new(&limits, "");
            r.request("quit");
            r.reply("ok\tbye");
            r.buf
        };
        assert!(matches!(
            decode_recording(&unsealed),
            Err(EngineError::Truncated { .. })
        ));
    }

    #[test]
    fn latency_replays_into_the_histogram() {
        let (_, snap) = bestk_obs::with_fresh(
            std::sync::Arc::new(bestk_obs::ManualClock::with_step(1)),
            || {
                let limits = ServeLimits::default();
                let image = record_session(b"query fig2 stats\nquit\n", &limits, "");
                let rec = decode_recording(&image).unwrap();
                let eng = fig2_engine();
                replay_recording(&rec, &eng, &policy()).unwrap()
            },
        );
        let rendered = snap.render();
        assert!(
            rendered.contains("serve.latency_nanos"),
            "replay must feed the latency histogram:\n{rendered}"
        );
    }
}
