//! One loaded dataset: a graph plus its (possibly lazily built) index
//! artifacts.
//!
//! The artifacts are everything the paper's query algorithms need, owned
//! (no borrowed `OrderedGraph` — the raw arrays are kept and validated
//! through `from_parts` on load):
//!
//! * the core decomposition (coreness, rank order, peel order, shells),
//! * the Algorithm 1 ordering (rank-sorted adjacency + position tags),
//! * the Algorithm 4 core forest,
//! * the per-k [`CoreSetProfile`] and per-core [`SingleCoreProfile`]
//!   primary values (triangles included, so all eight metrics answer).
//!
//! Queries are answered from the profiles in `O(kmax)` / `O(#cores)` — the
//! expensive `O(m^1.5)` work happens once at build (or snapshot-load) time.
//! Batches are fanned out through [`bestk_exec::ExecPolicy::map_chunks`]
//! with an ordered merge, so the answer list is bit-identical at every
//! thread count.

use bestk_core::{
    core_decomposition_with, core_set_profile, single_core_profile, CoreDecomposition, CoreForest,
    CoreSetProfile, OrderedGraph, SingleCoreProfile,
};
use bestk_exec::ExecPolicy;
use bestk_faults::sites;
use bestk_graph::{CsrGraph, GraphView, VertexId};

use crate::error::EngineError;
use crate::query::{Answer, Query};
use crate::snapv2::MappedIndex;
use crate::store::GraphStore;

/// The index artifacts derived from a graph (everything beyond the CSR).
#[derive(Debug, Clone)]
pub struct Artifacts {
    /// The core decomposition.
    pub decomp: CoreDecomposition,
    /// Rank-ordered adjacency (Algorithm 1), aligned with the graph's
    /// offsets.
    pub adj: Vec<VertexId>,
    /// Per-vertex `same` position tags.
    pub same: Vec<u32>,
    /// Per-vertex `plus` position tags.
    pub plus: Vec<u32>,
    /// Per-vertex `high` position tags.
    pub high: Vec<u32>,
    /// The LCPS core forest (Algorithm 4).
    pub forest: CoreForest,
    /// Per-k primary values of every k-core set (Algorithms 2–3).
    pub set_profile: CoreSetProfile,
    /// Per-core primary values of every forest node (Algorithm 5).
    pub core_profile: SingleCoreProfile,
}

impl Artifacts {
    /// Builds every artifact from scratch under an execution policy
    /// (`O(m^1.5)` — triangles are always computed so triangle metrics
    /// answer without a rebuild).
    pub fn build<G: GraphView + Sync>(graph: &G, policy: &ExecPolicy) -> Artifacts {
        let decomp = core_decomposition_with(graph, policy);
        let ordered = OrderedGraph::build_with(graph, &decomp, policy);
        let set_profile = core_set_profile(&ordered, true);
        let forest = CoreForest::build(graph, &decomp);
        let core_profile = single_core_profile(&ordered, &forest, true);
        let (adj, same, plus, high) = ordered.into_parts();
        Artifacts {
            decomp,
            adj,
            same,
            plus,
            high,
            forest,
            set_profile,
            core_profile,
        }
    }

    /// Approximate resident heap size in bytes (used for the engine's
    /// memory budget; intentionally an estimate, not an allocator audit).
    pub fn resident_bytes(&self) -> usize {
        let n = self.decomp.num_vertices();
        let decomp = 4 * n // coreness
            + 2 * 4 * n // order + peel order
            + 8 * self.decomp.shell_starts().len();
        let ordering =
            4 * self.adj.len() + 4 * (self.same.len() + self.plus.len() + self.high.len());
        let forest = 4 * self.forest.vertex_nodes().len()
            + self
                .forest
                .nodes()
                .iter()
                .map(|node| 32 + 4 * (node.vertices.len() + node.children.len()))
                .sum::<usize>();
        let profiles =
            40 * self.set_profile.primaries.len() + 44 * self.core_profile.primaries.len();
        decomp + ordering + forest + profiles
    }
}

/// The index side of a dataset: absent, owned heap artifacts, or a
/// zero-copy view into a mapped v2 snapshot.
#[derive(Debug, Clone)]
pub enum Index {
    /// No index resident; queries refuse until [`Dataset::ensure_built`].
    None,
    /// Fully materialized heap artifacts (v1 loads and fresh builds).
    Owned(Artifacts),
    /// Profiles plus mapped coreness from an opened v2 snapshot.
    Mapped(MappedIndex),
}

/// A named dataset held by the engine: the graph is always resident (in
/// one of the [`GraphStore`] backends); the index may be evicted under
/// memory pressure and lazily rebuilt on the next touch.
///
/// The store's variants hold their payloads behind [`Arc`]s (or borrow a
/// shared mapping), so the registry can replace a slot's dataset
/// copy-on-write (build, eviction) without deep-copying graph arrays, and
/// a checked-out dataset stays valid while the registry moves on.
#[derive(Debug, Clone)]
pub struct Dataset {
    store: GraphStore,
    index: Index,
}

impl Dataset {
    /// Wraps a graph with no artifacts yet (they build on first touch).
    pub fn from_graph(graph: CsrGraph) -> Dataset {
        Dataset {
            store: GraphStore::from(graph),
            index: Index::None,
        }
    }

    /// Wraps any storage backend with no artifacts yet.
    pub fn from_store(store: GraphStore) -> Dataset {
        Dataset {
            store,
            index: Index::None,
        }
    }

    /// Assembles a dataset from already-validated parts (the snapshot
    /// loader's constructor).
    pub fn from_built(graph: CsrGraph, artifacts: Artifacts) -> Dataset {
        Dataset {
            store: GraphStore::from(graph),
            index: Index::Owned(artifacts),
        }
    }

    /// Assembles a dataset from an opened v2 snapshot: a mapped graph plus
    /// its mapped index.
    pub fn from_mapped(store: GraphStore, index: MappedIndex) -> Dataset {
        Dataset {
            store,
            index: Index::Mapped(index),
        }
    }

    /// A new dataset sharing this one's graph, with `artifacts` attached
    /// (the copy-on-write publish step after an out-of-lock build).
    pub fn with_artifacts(&self, artifacts: Artifacts) -> Dataset {
        Dataset {
            store: self.store.clone(),
            index: Index::Owned(artifacts),
        }
    }

    /// A new dataset sharing this one's graph with no artifacts (the
    /// copy-on-write eviction step — checked-out readers keep theirs).
    pub fn without_artifacts(&self) -> Dataset {
        Dataset {
            store: self.store.clone(),
            index: Index::None,
        }
    }

    /// The underlying graph store.
    #[inline]
    pub fn graph(&self) -> &GraphStore {
        &self.store
    }

    /// Whether an index (owned or mapped) is currently resident.
    #[inline]
    pub fn is_built(&self) -> bool {
        !matches!(self.index, Index::None)
    }

    /// The owned artifacts, if resident. Mapped datasets return `None` —
    /// they answer queries but cannot be re-serialized to v1 or rebuilt
    /// into an `OrderedGraph` without materializing first.
    #[inline]
    pub fn artifacts(&self) -> Option<&Artifacts> {
        match &self.index {
            Index::Owned(art) => Some(art),
            _ => None,
        }
    }

    /// The mapped index, when this dataset came from a v2 snapshot.
    #[inline]
    pub fn mapped_index(&self) -> Option<&MappedIndex> {
        match &self.index {
            Index::Mapped(idx) => Some(idx),
            _ => None,
        }
    }

    /// Builds the artifacts if no index is resident; returns `true` when a
    /// build actually ran (the engine's build-vs-cache-hit counter hook).
    /// A mapped index counts as built — it answers every query already.
    pub fn ensure_built(&mut self, policy: &ExecPolicy) -> bool {
        if self.is_built() {
            return false;
        }
        self.index = Index::Owned(Artifacts::build(&self.store, policy));
        true
    }

    /// Drops the index, keeping only the graph (LRU eviction).
    pub fn drop_artifacts(&mut self) {
        self.index = Index::None;
    }

    /// Approximate resident heap size in bytes, graph included. Mapped
    /// graphs and coreness sections cost ~0 here — their bytes belong to
    /// the page cache, which is the point.
    pub fn resident_bytes(&self) -> usize {
        let graph = self.store.resident_heap_bytes();
        let index = match &self.index {
            Index::None => 0,
            Index::Owned(art) => art.resident_bytes(),
            Index::Mapped(idx) => idx.resident_bytes(),
        };
        graph + index
    }

    /// Answers one query from the resident artifacts.
    ///
    /// Requires [`is_built`](Self::is_built); the engine guarantees that by
    /// calling [`ensure_built`](Self::ensure_built) first.
    pub fn answer(&self, query: &Query) -> Result<Answer, EngineError> {
        // Both index forms answer from the same profile structures, so the
        // rendered lines are bit-identical; only the coreness/stats lookups
        // differ (heap arrays vs 4-byte mapped reads).
        let (set_profile, core_profile) = match &self.index {
            Index::Owned(art) => (&art.set_profile, &art.core_profile),
            Index::Mapped(idx) => (idx.set_profile(), idx.core_profile()),
            Index::None => {
                return Err(EngineError::BadQuery(
                    "dataset artifacts are not built".into(),
                ))
            }
        };
        match *query {
            Query::BestKSet { metric } => match set_profile.try_best(&metric)? {
                Some(best) => Ok(Answer::BestKSet {
                    metric,
                    k: best.k,
                    score: best.score,
                }),
                None => Ok(Answer::Undefined { what: "bestkset" }),
            },
            Query::BestCore { metric } => match core_profile.try_best(&metric)? {
                Some(best) => Ok(Answer::BestCore {
                    metric,
                    node: best.node,
                    k: best.k,
                    score: best.score,
                    size: core_profile.primaries[best.node as usize].num_vertices,
                }),
                None => Ok(Answer::Undefined { what: "bestcore" }),
            },
            Query::ScoreProfile { metric } => Ok(Answer::Profile {
                metric,
                scores: set_profile.try_scores(&metric)?,
            }),
            Query::CoreOfVertex { vertex } => {
                let n = self.store.num_vertices();
                let coreness = match &self.index {
                    Index::Owned(art) if (vertex as usize) < n => Some(art.decomp.coreness(vertex)),
                    Index::Mapped(idx) => idx.core_of(vertex),
                    _ => None,
                };
                match coreness {
                    Some(coreness) => Ok(Answer::CoreOf { vertex, coreness }),
                    None => Err(EngineError::BadQuery(format!(
                        "vertex {vertex} out of range (n = {n})"
                    ))),
                }
            }
            Query::Stats => {
                let (kmax, forest_nodes) = match &self.index {
                    Index::Owned(art) => (art.decomp.kmax(), art.forest.node_count() as u64),
                    Index::Mapped(idx) => (idx.kmax(), u64::from(idx.forest_nodes())),
                    Index::None => unreachable!("checked above"),
                };
                Ok(Answer::Stats {
                    vertices: self.store.num_vertices() as u64,
                    edges: self.store.num_edges() as u64,
                    kmax,
                    forest_nodes,
                })
            }
        }
    }

    /// Answers a batch of queries through the execution policy: queries are
    /// split into even chunks, answered on the policy's workers, and merged
    /// back in query order — bit-identical output at every thread count.
    pub fn answer_batch(
        &self,
        queries: &[Query],
        policy: &ExecPolicy,
    ) -> Vec<Result<Answer, EngineError>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let plan = policy.plan_even(queries.len());
        let parts = policy.map_chunks(
            &plan,
            || (),
            |(), _, range| {
                // This closure executes on the policy's worker threads, so
                // the `exec.worker` failpoint exercises the runtime's panic
                // containment end to end (worker → PanicSlot → caller).
                bestk_faults::maybe_panic(sites::EXEC_WORKER);
                queries[range]
                    .iter()
                    .map(|q| self.answer(q))
                    .collect::<Vec<_>>()
            },
        );
        parts.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bestk_core::Metric;
    use bestk_graph::generators;

    fn built(g: CsrGraph) -> Dataset {
        let mut ds = Dataset::from_graph(g);
        assert!(ds.ensure_built(&ExecPolicy::Sequential));
        ds
    }

    #[test]
    fn figure2_answers_match_the_paper() {
        // Paper Examples 4/5: best k-core set is k=2 under average degree
        // and k=3 under clustering coefficient.
        let ds = built(generators::paper_figure2());
        let a = ds
            .answer(&Query::BestKSet {
                metric: Metric::AverageDegree,
            })
            .unwrap();
        assert_eq!(
            a,
            Answer::BestKSet {
                metric: Metric::AverageDegree,
                k: 2,
                score: 2.0 * 19.0 / 12.0
            }
        );
        let a = ds
            .answer(&Query::BestKSet {
                metric: Metric::ClusteringCoefficient,
            })
            .unwrap();
        assert!(matches!(a, Answer::BestKSet { k: 3, .. }));
        // Best single core under internal density: one of the K4s.
        let a = ds
            .answer(&Query::BestCore {
                metric: Metric::InternalDensity,
            })
            .unwrap();
        assert!(
            matches!(
                a,
                Answer::BestCore {
                    k: 3,
                    score,
                    size: 4,
                    ..
                } if score == 1.0
            ),
            "{a:?}"
        );
        let a = ds.answer(&Query::Stats).unwrap();
        assert_eq!(
            a,
            Answer::Stats {
                vertices: 12,
                edges: 19,
                kmax: 3,
                forest_nodes: 3
            }
        );
        let a = ds.answer(&Query::CoreOfVertex { vertex: 5 }).unwrap();
        assert_eq!(
            a,
            Answer::CoreOf {
                vertex: 5,
                coreness: 2
            }
        );
    }

    #[test]
    fn out_of_range_vertex_is_an_error() {
        let ds = built(generators::paper_figure2());
        let err = ds.answer(&Query::CoreOfVertex { vertex: 99 }).unwrap_err();
        assert!(matches!(err, EngineError::BadQuery(_)), "{err}");
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn unbuilt_dataset_refuses_queries() {
        let ds = Dataset::from_graph(generators::paper_figure2());
        assert!(!ds.is_built());
        assert!(ds.answer(&Query::Stats).is_err());
    }

    #[test]
    fn ensure_built_is_idempotent() {
        let mut ds = Dataset::from_graph(generators::paper_figure2());
        assert!(ds.ensure_built(&ExecPolicy::Sequential));
        assert!(!ds.ensure_built(&ExecPolicy::Sequential));
        ds.drop_artifacts();
        assert!(!ds.is_built());
        assert!(ds.ensure_built(&ExecPolicy::Sequential));
    }

    #[test]
    fn batch_answers_are_thread_invariant() {
        let ds = built(generators::erdos_renyi_gnm(200, 800, 11));
        let mut queries = vec![Query::Stats];
        for m in Metric::EXTENDED {
            queries.push(Query::BestKSet { metric: m });
            queries.push(Query::BestCore { metric: m });
            queries.push(Query::ScoreProfile { metric: m });
        }
        for v in 0..20 {
            queries.push(Query::CoreOfVertex { vertex: v });
        }
        let reference: Vec<String> = ds
            .answer_batch(&queries, &ExecPolicy::Sequential)
            .into_iter()
            .map(|r| r.map(|a| a.to_line()).unwrap_or_else(|e| e.to_string()))
            .collect();
        for threads in [1, 2, 4, 7] {
            let policy = ExecPolicy::with_threads(threads).unwrap();
            let got: Vec<String> = ds
                .answer_batch(&queries, &policy)
                .into_iter()
                .map(|r| r.map(|a| a.to_line()).unwrap_or_else(|e| e.to_string()))
                .collect();
            assert_eq!(got, reference, "{threads} threads");
        }
    }

    #[test]
    fn resident_bytes_grows_with_artifacts() {
        let mut ds = Dataset::from_graph(generators::erdos_renyi_gnm(100, 400, 3));
        let bare = ds.resident_bytes();
        assert!(bare > 0);
        ds.ensure_built(&ExecPolicy::Sequential);
        assert!(ds.resident_bytes() > bare);
    }

    #[test]
    fn empty_graph_answers_undefined() {
        let ds = built(CsrGraph::empty(0));
        let a = ds
            .answer(&Query::BestKSet {
                metric: Metric::AverageDegree,
            })
            .unwrap();
        assert_eq!(a, Answer::Undefined { what: "bestkset" });
        let a = ds
            .answer(&Query::BestCore {
                metric: Metric::AverageDegree,
            })
            .unwrap();
        assert_eq!(a, Answer::Undefined { what: "bestcore" });
    }
}
