//! Version-2 `.bestk` snapshots: zero-copy, mmap-friendly layout.
//!
//! Where version 1 deserializes every section into heap structures at
//! load time, a v2 snapshot is *opened*: the file is memory-mapped, the
//! 64-byte header and section table are validated, the two (tiny) profile
//! sections are decoded, and the graph plus coreness sections are served
//! straight out of the mapping — no allocation proportional to the graph,
//! and **no read of the graph section at all** until a query first touches
//! it. Cold starts on large datasets go from `O(n + m)` deserialization
//! to `O(kmax + #cores)`.
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic = b"BESTKSS2"
//! 8       4     version = 2
//! 12      4     section count
//! 16      8     n      — vertex count
//! 24      8     nnz    — adjacency entries (2 m)
//! 32      4     kmax
//! 36      4     forest node count
//! 40      8     fnv1a of the section table bytes
//! 48      8     fnv1a of header bytes 0..48
//! 56      8     reserved (zero)
//! 64      table: sections × { id u32, reserved u32, offset u64, len u64, fnv1a u64 }
//! ...     section bodies, ascending offsets, each 8-byte aligned
//! ```
//!
//! Section ids and bodies:
//!
//! | id | name           | body |
//! |----|----------------|------|
//! | 1  | `graph`        | the [`ByteCsr`] layout (`n u64, nnz u64, offsets (n+1)×u64, neighbors nnz×u32`) |
//! | 5  | `set-profile`  | v1's set-profile body |
//! | 6  | `core-profile` | v1's core-profile body |
//! | 7  | `coreness`     | `n × u32` |
//!
//! ## Deferred graph validation
//!
//! [`open`] verifies the header, table, profile, and coreness checksums —
//! all `O(kmax + #cores + n/page)` work — but **not** the graph section's
//! checksum: hashing it would fault in the whole file and defeat the
//! zero-copy open. The graph's `O(1)` framing header *is* cross-checked
//! against the snapshot header, and every [`ByteCsr`] accessor is
//! bounds-clamped, so corrupt adjacency bytes yield wrong answers, never
//! a crash; call [`MappedIndex::validate_graph`] to pay for the full
//! check when integrity matters more than latency.

use std::path::Path;
use std::sync::Arc;

use bestk_core::{CoreSetProfile, GraphContext, SingleCoreProfile};
use bestk_faults::sites;
use bestk_graph::{ByteCsr, GraphView, VertexId};

use crate::dataset::Dataset;
use crate::error::EngineError;
use crate::mmap::Mmap;
use crate::snapshot::{
    bad, encode_core_profile, encode_set_profile, fnv1a, put_u32, put_u64, with_retries,
    write_snapshot_bytes, RetryPolicy, SectionReader,
};
use crate::store::{GraphStore, SnapshotSlice};

/// The v2 magic bytes.
pub const MAGIC: &[u8; 8] = b"BESTKSS2";
/// The v2 format version number.
pub const VERSION: u32 = 2;
/// Fixed header length in bytes.
const HEADER_LEN: usize = 64;
/// Bytes of the header covered by the header checksum.
const HEADER_CHECKED: usize = 48;
/// Section table entry size (identical to v1).
const ENTRY_LEN: usize = 32;

const SEC_GRAPH: u32 = 1;
const SEC_SET_PROFILE: u32 = 5;
const SEC_CORE_PROFILE: u32 = 6;
const SEC_CORENESS: u32 = 7;

fn section_name(id: u32) -> Option<&'static str> {
    match id {
        SEC_GRAPH => Some("graph"),
        SEC_SET_PROFILE => Some("set-profile"),
        SEC_CORE_PROFILE => Some("core-profile"),
        SEC_CORENESS => Some("coreness"),
        _ => None,
    }
}

/// Rounds `x` up to the next multiple of 8.
fn align8(x: usize) -> usize {
    x.div_ceil(8) * 8
}

// ---------------------------------------------------------------- writing

/// Serializes a built dataset into the v2 byte layout.
pub fn to_bytes(dataset: &Dataset) -> Result<Vec<u8>, EngineError> {
    let art = dataset.artifacts().ok_or_else(|| {
        EngineError::BadSnapshot(
            "cannot save a v2 snapshot from a dataset whose artifacts are not built".into(),
        )
    })?;
    let g = dataset.graph();
    let mut coreness = Vec::with_capacity(4 * g.num_vertices());
    for &c in art.decomp.coreness_slice() {
        put_u32(&mut coreness, c);
    }
    let sections: [(u32, Vec<u8>); 4] = [
        (SEC_GRAPH, bestk_graph::bytecsr::encode_view(g)),
        (SEC_SET_PROFILE, encode_set_profile(&art.set_profile)),
        (SEC_CORE_PROFILE, encode_core_profile(&art.core_profile)),
        (SEC_CORENESS, coreness),
    ];

    // Lay the sections out 8-byte aligned after the table, then build the
    // table, then the header (its checksum covers the table checksum).
    let table_end = HEADER_LEN + ENTRY_LEN * sections.len();
    let mut offsets = Vec::with_capacity(sections.len());
    let mut cursor = align8(table_end);
    let mut total = cursor;
    for (_, body) in &sections {
        offsets.push(cursor);
        total = cursor + body.len();
        cursor = align8(total);
    }

    let mut table = Vec::with_capacity(ENTRY_LEN * sections.len());
    for ((id, body), &off) in sections.iter().zip(&offsets) {
        put_u32(&mut table, *id);
        put_u32(&mut table, 0);
        put_u64(&mut table, off as u64);
        put_u64(&mut table, body.len() as u64);
        put_u64(&mut table, fnv1a(body));
    }

    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);
    put_u32(&mut out, bestk_graph::cast::u32_of(sections.len()));
    put_u64(&mut out, g.num_vertices() as u64);
    put_u64(&mut out, 2 * g.num_edges() as u64);
    put_u32(&mut out, art.decomp.kmax());
    put_u32(&mut out, bestk_graph::cast::u32_of(art.forest.node_count()));
    put_u64(&mut out, fnv1a(&table));
    let header_checksum = fnv1a(&out[..HEADER_CHECKED]);
    put_u64(&mut out, header_checksum);
    put_u64(&mut out, 0);
    out.extend_from_slice(&table);
    for ((_, body), &off) in sections.iter().zip(&offsets) {
        out.resize(off, 0);
        out.extend_from_slice(body);
    }
    Ok(out)
}

/// Writes a v2 snapshot to `path` (one attempt).
pub fn save_path<P: AsRef<Path>>(dataset: &Dataset, path: P) -> Result<(), EngineError> {
    save_path_with_retry(dataset, path, &RetryPolicy::none())
}

/// Writes a v2 snapshot to `path`, retrying transient I/O failures under
/// `policy`. Goes through the same `snapshot.write` failpoint-instrumented
/// single-attempt writer as v1, so injected mid-write crashes and
/// truncations exercise this path too.
pub fn save_path_with_retry<P: AsRef<Path>>(
    dataset: &Dataset,
    path: P,
    policy: &RetryPolicy,
) -> Result<(), EngineError> {
    let bytes = to_bytes(dataset)?;
    with_retries(policy, || write_snapshot_bytes(path.as_ref(), &bytes)).map_err(EngineError::Io)
}

// ---------------------------------------------------------------- opening

/// The index portion of an opened v2 snapshot: decoded profiles plus
/// zero-copy access to the mapped coreness array.
#[derive(Debug, Clone)]
pub struct MappedIndex {
    map: Arc<Mmap>,
    coreness_off: usize,
    n: usize,
    kmax: u32,
    forest_nodes: u32,
    graph_off: usize,
    graph_len: usize,
    graph_checksum: u64,
    set_profile: CoreSetProfile,
    core_profile: SingleCoreProfile,
}

impl MappedIndex {
    /// `kmax` as recorded in the snapshot header.
    pub fn kmax(&self) -> u32 {
        self.kmax
    }

    /// Core-forest node count as recorded in the snapshot header.
    pub fn forest_nodes(&self) -> u32 {
        self.forest_nodes
    }

    /// The per-k set profile (decoded eagerly; it is `O(kmax)` small).
    pub fn set_profile(&self) -> &CoreSetProfile {
        &self.set_profile
    }

    /// The per-core profile (decoded eagerly; `O(#cores)` small).
    pub fn core_profile(&self) -> &SingleCoreProfile {
        &self.core_profile
    }

    /// Coreness of `vertex`, read directly from the mapped section —
    /// a single 4-byte access. `None` when the vertex is out of range.
    pub fn core_of(&self, vertex: VertexId) -> Option<u32> {
        let v = vertex as usize;
        if v >= self.n {
            return None;
        }
        let at = self.coreness_off + 4 * v;
        let b = &self.map.as_slice()[at..at + 4];
        Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Pays the deferred cost: hashes the mapped graph section against its
    /// recorded checksum and structurally validates the CSR layout. This
    /// faults the whole graph section in — exactly the work [`open`]
    /// skips.
    pub fn validate_graph(&self) -> Result<(), EngineError> {
        let body = &self.map.as_slice()[self.graph_off..self.graph_off + self.graph_len];
        if fnv1a(body) != self.graph_checksum {
            return Err(EngineError::ChecksumMismatch { section: "graph" });
        }
        let view = ByteCsr::new(body).map_err(EngineError::Graph)?;
        view.validate_structure().map_err(EngineError::Graph)
    }

    /// Approximate heap bytes held by the decoded (non-mapped) parts.
    pub fn resident_bytes(&self) -> usize {
        40 * self.set_profile.primaries.len() + 44 * self.core_profile.primaries.len()
    }
}

/// Opens a v2 snapshot: map, validate the header/table/small-section
/// checksums, borrow the graph — and return a dataset that answers every
/// query without deserializing the graph.
pub fn open<P: AsRef<Path>>(path: P) -> Result<Dataset, EngineError> {
    open_with_retry(path, &RetryPolicy::none())
}

/// [`open`] with transient I/O retries. The `snapshot.read` failpoint's
/// injected I/O errors fire before the mapping is attempted, mirroring
/// the v1 read path; injected buffer corruption does not apply (the bytes
/// are the kernel's, not a heap copy) — corruption tests damage the file
/// itself instead.
pub fn open_with_retry<P: AsRef<Path>>(
    path: P,
    policy: &RetryPolicy,
) -> Result<Dataset, EngineError> {
    let map = with_retries(policy, || {
        if let Some(e) = bestk_faults::io_error(sites::SNAPSHOT_READ) {
            return Err(e);
        }
        Mmap::open(path.as_ref())
    })?;
    open_mmap(Arc::new(map))
}

/// Opens an already-established mapping (the testable core of [`open`]).
pub fn open_mmap(map: Arc<Mmap>) -> Result<Dataset, EngineError> {
    let buf = map.as_slice();
    if buf.len() < 8 {
        return Err(EngineError::Truncated { section: "magic" });
    }
    if &buf[..8] != MAGIC {
        return Err(EngineError::BadMagic);
    }
    if buf.len() < HEADER_LEN {
        return Err(EngineError::Truncated { section: "header" });
    }
    let mut h = SectionReader::new(&buf[8..HEADER_LEN], "header");
    let version = h.u32()?;
    if version != VERSION {
        return Err(EngineError::VersionSkew {
            found: version,
            supported: VERSION,
        });
    }
    let section_count = h.u32()? as usize;
    let n = h.count()?;
    let nnz = h.count()?;
    let kmax = h.u32()?;
    let forest_nodes = h.u32()?;
    let table_checksum = h.u64()?;
    let header_checksum = h.u64()?;
    if fnv1a(&buf[..HEADER_CHECKED]) != header_checksum {
        return Err(EngineError::ChecksumMismatch { section: "header" });
    }
    let table_end = section_count
        .checked_mul(ENTRY_LEN)
        .and_then(|t| t.checked_add(HEADER_LEN))
        .ok_or(EngineError::Truncated {
            section: "section table",
        })?;
    if buf.len() < table_end {
        return Err(EngineError::Truncated {
            section: "section table",
        });
    }
    let table = &buf[HEADER_LEN..table_end];
    if fnv1a(table) != table_checksum {
        return Err(EngineError::ChecksumMismatch {
            section: "section table",
        });
    }

    // Walk the table: known non-duplicate ids, aligned ascending offsets,
    // in-bounds bodies.
    let mut found: [Option<(usize, usize, u64)>; 4] = [None; 4];
    let mut cursor = align8(table_end);
    let mut raw_end = cursor;
    for s in 0..section_count {
        let mut r = SectionReader::new(&table[ENTRY_LEN * s..ENTRY_LEN * (s + 1)], "section table");
        let id = r.u32()?;
        let _reserved = r.u32()?;
        let offset = r.count()?;
        let len = r.count()?;
        let checksum = r.u64()?;
        let name = section_name(id)
            .ok_or_else(|| EngineError::BadSnapshot(format!("unknown v2 section id {id}")))?;
        if offset != cursor {
            return Err(EngineError::BadSnapshot(format!(
                "section {name} starts at {offset}, expected {cursor}"
            )));
        }
        let end = offset
            .checked_add(len)
            .ok_or(EngineError::Truncated { section: name })?;
        if end > buf.len() {
            return Err(EngineError::Truncated { section: name });
        }
        let slot = match id {
            SEC_GRAPH => 0,
            SEC_SET_PROFILE => 1,
            SEC_CORE_PROFILE => 2,
            _ => 3,
        };
        if found[slot].is_some() {
            return Err(EngineError::BadSnapshot(format!(
                "duplicate {name} section"
            )));
        }
        found[slot] = Some((offset, len, checksum));
        raw_end = end;
        cursor = align8(end);
    }
    if buf.len() != raw_end {
        return Err(EngineError::TrailingBytes);
    }
    let want =
        |slot: usize, name: &'static str| found[slot].ok_or(EngineError::MissingSection(name));
    let (graph_off, graph_len, graph_checksum) = want(0, "graph")?;
    let (sp_off, sp_len, sp_checksum) = want(1, "set-profile")?;
    let (cp_off, cp_len, cp_checksum) = want(2, "core-profile")?;
    let (cn_off, cn_len, cn_checksum) = want(3, "coreness")?;

    // Small sections: verify checksums and decode. The graph section's
    // checksum is deliberately deferred (see the module docs).
    let sp_body = &buf[sp_off..sp_off + sp_len];
    if fnv1a(sp_body) != sp_checksum {
        return Err(EngineError::ChecksumMismatch {
            section: "set-profile",
        });
    }
    let cp_body = &buf[cp_off..cp_off + cp_len];
    if fnv1a(cp_body) != cp_checksum {
        return Err(EngineError::ChecksumMismatch {
            section: "core-profile",
        });
    }
    let cn_body = &buf[cn_off..cn_off + cn_len];
    if fnv1a(cn_body) != cn_checksum {
        return Err(EngineError::ChecksumMismatch {
            section: "coreness",
        });
    }
    if cn_len != 4 * n {
        return Err(bad(
            "coreness",
            format!("{cn_len} bytes for {n} vertices (want {})", 4 * n),
        ));
    }
    let set_profile = decode_set_profile(sp_body, n, nnz, kmax)?;
    let core_profile = decode_core_profile(cp_body, n, nnz, forest_nodes)?;

    // Graph: O(1) framing only, cross-checked against the header.
    let slice = SnapshotSlice::new(Arc::clone(&map), graph_off, graph_len)
        .ok_or(EngineError::Truncated { section: "graph" })?;
    let view = ByteCsr::new(slice).map_err(EngineError::Graph)?;
    if view.num_vertices() != n || 2 * view.num_edges() != nnz {
        return Err(bad(
            "graph",
            format!(
                "graph section declares n = {}, nnz = {} but the header says n = {n}, nnz = {nnz}",
                view.num_vertices(),
                2 * view.num_edges()
            ),
        ));
    }

    let index = MappedIndex {
        map,
        coreness_off: cn_off,
        n,
        kmax,
        forest_nodes,
        graph_off,
        graph_len,
        graph_checksum,
        set_profile,
        core_profile,
    };
    Ok(Dataset::from_mapped(GraphStore::Mapped(view), index))
}

// ---------------------------------------------------------------- decode

fn decode_context(
    r: &mut SectionReader<'_>,
    section: &'static str,
    n: usize,
    nnz: usize,
) -> Result<GraphContext, EngineError> {
    let total_vertices = r.u64()?;
    let total_edges = r.u64()?;
    if total_vertices != n as u64 || total_edges != (nnz / 2) as u64 {
        return Err(bad(
            section,
            format!(
                "context ({total_vertices} vertices, {total_edges} edges) disagrees with the \
                 header ({n}, {})",
                nnz / 2
            ),
        ));
    }
    Ok(GraphContext {
        total_vertices,
        total_edges,
    })
}

fn decode_set_profile(
    body: &[u8],
    n: usize,
    nnz: usize,
    header_kmax: u32,
) -> Result<CoreSetProfile, EngineError> {
    let mut r = SectionReader::new(body, "set-profile");
    let kmax = r.u32()?;
    let has_triangles = r.u8()? != 0;
    let context = decode_context(&mut r, "set-profile", n, nnz)?;
    let count = r.count()?;
    let primaries = r.primaries(count)?;
    r.finish()?;
    if kmax != header_kmax {
        return Err(bad(
            "set-profile",
            format!("kmax {kmax} disagrees with the header's {header_kmax}"),
        ));
    }
    if count != kmax as usize + 1 {
        return Err(bad(
            "set-profile",
            format!("has {count} entries; kmax {kmax} requires {}", kmax + 1),
        ));
    }
    Ok(CoreSetProfile {
        kmax,
        primaries,
        has_triangles,
        context,
    })
}

fn decode_core_profile(
    body: &[u8],
    n: usize,
    nnz: usize,
    forest_nodes: u32,
) -> Result<SingleCoreProfile, EngineError> {
    let mut r = SectionReader::new(body, "core-profile");
    let has_triangles = r.u8()? != 0;
    let context = decode_context(&mut r, "core-profile", n, nnz)?;
    let count = r.count()?;
    let coreness = r.u32_vec(count)?;
    let primaries = r.primaries(count)?;
    r.finish()?;
    if count != forest_nodes as usize {
        return Err(bad(
            "core-profile",
            format!("has {count} entries but the header declares {forest_nodes} forest nodes"),
        ));
    }
    Ok(SingleCoreProfile {
        primaries,
        coreness,
        has_triangles,
        context,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Answer, Query};
    use bestk_core::Metric;
    use bestk_exec::ExecPolicy;
    use bestk_graph::generators;

    fn built(g: bestk_graph::CsrGraph) -> Dataset {
        let mut ds = Dataset::from_graph(g);
        ds.ensure_built(&ExecPolicy::Sequential);
        ds
    }

    fn all_queries() -> Vec<Query> {
        let mut qs = vec![Query::Stats];
        for m in Metric::EXTENDED {
            qs.push(Query::BestKSet { metric: m });
            qs.push(Query::BestCore { metric: m });
            qs.push(Query::ScoreProfile { metric: m });
        }
        for v in 0..12 {
            qs.push(Query::CoreOfVertex { vertex: v });
        }
        qs
    }

    fn answers(ds: &Dataset) -> Vec<String> {
        all_queries()
            .iter()
            .map(|q| {
                ds.answer(q)
                    .map(|a| a.to_line())
                    .unwrap_or_else(|e| format!("err\t{e}"))
            })
            .collect()
    }

    #[test]
    fn v2_round_trip_preserves_every_answer() {
        let ds = built(generators::paper_figure2());
        let bytes = to_bytes(&ds).unwrap();
        let mapped = open_mmap(Arc::new(Mmap::from_vec(bytes))).unwrap();
        assert_eq!(mapped.graph().backend_name(), "mapped");
        assert!(mapped.is_built());
        assert_eq!(answers(&mapped), answers(&ds));
    }

    #[test]
    fn v2_file_round_trip_via_real_mmap() {
        let dir = std::env::temp_dir().join("bestk-snapv2-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig2.bestk2");
        let ds = built(generators::paper_figure2());
        save_path(&ds, &path).unwrap();
        let mapped = open(&path).unwrap();
        assert_eq!(answers(&mapped), answers(&ds));
        let a = mapped.answer(&Query::Stats).unwrap();
        assert_eq!(
            a,
            Answer::Stats {
                vertices: 12,
                edges: 19,
                kmax: 3,
                forest_nodes: 3
            }
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_bad_magic_version_and_truncation() {
        let ds = built(generators::paper_figure2());
        let bytes = to_bytes(&ds).unwrap();
        // Magic.
        let mut b = bytes.clone();
        b[0] ^= 0xff;
        assert!(matches!(
            open_mmap(Arc::new(Mmap::from_vec(b))).unwrap_err(),
            EngineError::BadMagic
        ));
        // Version (header checksum recomputed so the skew is what's seen).
        let mut b = bytes.clone();
        b[8..12].copy_from_slice(&9u32.to_le_bytes());
        let e = open_mmap(Arc::new(Mmap::from_vec(b))).unwrap_err();
        assert!(
            matches!(
                e,
                EngineError::VersionSkew {
                    found: 9,
                    supported: 2
                }
            ),
            "{e}"
        );
        // Truncations at a few boundaries.
        for cut in [4, 32, 70, bytes.len() / 2] {
            let e = open_mmap(Arc::new(Mmap::from_vec(bytes[..cut].to_vec()))).unwrap_err();
            assert!(e.is_corruption(), "cut {cut}: {e}");
        }
    }

    #[test]
    fn header_and_small_section_flips_are_rejected_or_benign() {
        let ds = built(generators::paper_figure2());
        let bytes = to_bytes(&ds).unwrap();
        let reference = answers(&open_mmap(Arc::new(Mmap::from_vec(bytes.clone()))).unwrap());
        // Flip a bit in every byte outside the (deferred) graph body: open
        // must reject the flip, or — for inter-section alignment padding —
        // accept it with bit-identical answers.
        let graph_off = u64::from_le_bytes(bytes[72..80].try_into().unwrap()) as usize;
        let graph_len = u64::from_le_bytes(bytes[80..88].try_into().unwrap()) as usize;
        for at in 0..bytes.len() {
            if at >= graph_off && at < graph_off + graph_len {
                continue; // graph body: deferred, tested below
            }
            let mut b = bytes.clone();
            b[at] ^= 0x40;
            match open_mmap(Arc::new(Mmap::from_vec(b))) {
                Err(_) => {}
                Ok(ds) => assert_eq!(answers(&ds), reference, "flip at {at} changed answers"),
            }
        }
    }

    #[test]
    fn graph_body_corruption_defers_to_validate_graph() {
        let ds = built(generators::paper_figure2());
        let bytes = to_bytes(&ds).unwrap();
        let graph_off = u64::from_le_bytes(bytes[72..80].try_into().unwrap()) as usize;
        let graph_len = u64::from_le_bytes(bytes[80..88].try_into().unwrap()) as usize;
        let mut b = bytes.clone();
        // Flip a byte deep in the adjacency area (past the 16-byte framing
        // header the open path does read).
        b[graph_off + graph_len - 1] ^= 0x01;
        let mapped = open_mmap(Arc::new(Mmap::from_vec(b))).expect("open must not read the body");
        let idx = mapped.mapped_index().unwrap();
        assert!(matches!(
            idx.validate_graph().unwrap_err(),
            EngineError::ChecksumMismatch { section: "graph" }
        ));
        // Profile-backed queries still answer correctly.
        let a = mapped
            .answer(&Query::BestKSet {
                metric: Metric::AverageDegree,
            })
            .unwrap();
        assert_eq!(
            a,
            Answer::BestKSet {
                metric: Metric::AverageDegree,
                k: 2,
                score: 2.0 * 19.0 / 12.0
            }
        );
        // And the intact original validates clean.
        let good = open_mmap(Arc::new(Mmap::from_vec(bytes))).unwrap();
        good.mapped_index().unwrap().validate_graph().unwrap();
    }

    #[test]
    fn unbuilt_dataset_refuses_v2_save() {
        let ds = Dataset::from_graph(generators::paper_figure2());
        assert!(matches!(
            to_bytes(&ds).unwrap_err(),
            EngineError::BadSnapshot(_)
        ));
    }

    #[test]
    fn core_of_reads_single_values_from_the_map() {
        let g = generators::paper_figure2();
        let expect = bestk_core::core_decomposition(&g);
        let ds = built(g);
        let mapped = open_mmap(Arc::new(Mmap::from_vec(to_bytes(&ds).unwrap()))).unwrap();
        let idx = mapped.mapped_index().unwrap();
        for v in 0..12u32 {
            assert_eq!(idx.core_of(v), Some(expect.coreness(v)));
        }
        assert_eq!(idx.core_of(12), None);
        assert_eq!(idx.kmax(), 3);
        assert_eq!(idx.forest_nodes(), 3);
    }
}
