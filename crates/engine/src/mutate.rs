//! Edge mutations through the engine: stage → commit → compact.
//!
//! The registry's datasets are immutable; mutation happens through a
//! per-slot [`DeltaSlot`] holding the pending ops, the durable
//! [`DeltaLog`], and the incrementally maintained [`DeltaIndex`]:
//!
//! * **stage** ([`SharedEngine::stage_edge`]) validates the op against a
//!   [`DeltaOverlay`] of the committed graph plus the already-pending ops,
//!   appends it to the write-ahead log (not yet durable), and buffers it.
//! * **commit** ([`SharedEngine::commit_edges`]) appends the commit marker
//!   and `fsync`s (the durability point), folds the pending ops into the
//!   maintained [`DeltaIndex`] — affected-region work, not a rebuild —
//!   materializes the mutated graph, and installs it as the slot's new
//!   dataset. Full query artifacts (forest, triangle profiles) rebuild
//!   lazily on the next query; the commit reply's best-k comes straight
//!   from the maintained index.
//! * **compact**: once enough committed ops accumulate
//!   ([`COMPACT_OPS`]), the commit also writes the folded state as a v2
//!   snapshot next to the log (temp file + rename, so live mappings of the
//!   old snapshot survive) and truncates the log back to its header.
//!
//! Lock discipline matches the rest of the registry: the slot's
//! `DeltaSlot` is *taken out* under the guard, all I/O and index work runs
//! with no guard live, and a second guard restores (or installs) the
//! result. While a slot's delta is checked out, a concurrent mutation on
//! the same dataset gets a typed `mutation rejected` error instead of
//! blocking.
//!
//! On load ([`SharedEngine::load_snapshot_with_fallback`]) the sibling
//! `<snapshot>.wal` is replayed: committed ops re-apply on top of the
//! loaded snapshot before the dataset is installed. An unreadable log — or
//! a committed op that no longer applies — is quarantined to
//! `<wal>.quarantine` and the engine serves the un-mutated snapshot,
//! mirroring the corrupt-snapshot ladder.

use std::path::PathBuf;

use bestk_core::{BestKSet, Metric};
use bestk_delta::{DeltaError, DeltaIndex, DeltaLog, DeltaOverlay};
use bestk_exec::ExecPolicy;
use bestk_graph::generators::EdgeOp;

use crate::dataset::Dataset;
use crate::error::EngineError;
use crate::registry::SharedEngine;

/// Committed ops accumulated before a commit also compacts the write-ahead
/// log into a fresh v2 snapshot.
pub const COMPACT_OPS: u64 = 256;

/// Per-slot mutation state: pending ops, the write-ahead log, and the
/// incrementally maintained index. Lives inside the registry slot and is
/// taken out (never locked over I/O) for the duration of one mutation.
#[derive(Debug)]
pub struct DeltaSlot {
    /// Staged, uncommitted ops in application order.
    pub(crate) pending: Vec<EdgeOp>,
    /// The durable log; `None` for in-memory datasets (`insert_graph`),
    /// whose mutations are valid but not crash-durable.
    pub(crate) wal: Option<DeltaLog>,
    /// The maintained best-k index over the *committed* graph. Built on
    /// the first commit, then repaired per op across later ones.
    pub(crate) index: Option<DeltaIndex>,
    /// Committed ops since the last compaction.
    pub(crate) committed_ops: u64,
    /// Compaction threshold (the constant, overridable in tests).
    pub(crate) compact_after: u64,
}

impl Default for DeltaSlot {
    fn default() -> DeltaSlot {
        DeltaSlot {
            pending: Vec::new(),
            wal: None,
            index: None,
            committed_ops: 0,
            compact_after: COMPACT_OPS,
        }
    }
}

impl DeltaSlot {
    /// Heap bytes this slot's mutation state keeps resident: the
    /// maintained index (dominant after the first commit) plus the staged
    /// op buffer. Counted by [`Engine::resident_bytes`], so a mutating
    /// dataset pressures the LRU budget like any other resident state.
    ///
    /// [`Engine::resident_bytes`]: crate::Engine::resident_bytes
    pub(crate) fn heap_bytes(&self) -> usize {
        self.index.as_ref().map_or(0, DeltaIndex::heap_bytes)
            + self.pending.capacity() * std::mem::size_of::<EdgeOp>()
    }

    fn with_wal(wal: DeltaLog, committed_ops: u64) -> DeltaSlot {
        DeltaSlot {
            wal: Some(wal),
            committed_ops,
            ..DeltaSlot::default()
        }
    }
}

/// What one commit did, for replies and assertions.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitSummary {
    /// Ops folded in by this commit.
    pub ops: usize,
    /// Vertex count of the committed graph.
    pub vertices: u64,
    /// Edge count of the committed graph.
    pub edges: u64,
    /// Largest coreness of the committed graph.
    pub kmax: u32,
    /// Best k under average degree, from the maintained index.
    pub best: Option<BestKSet>,
    /// Whether this commit also compacted the log into a v2 snapshot.
    pub compacted: bool,
}

/// Validates `op` against the committed graph plus already-pending ops,
/// write-ahead-logs it, and buffers it. Runs with no registry guard live.
fn stage_op(dataset: &Dataset, delta: &mut DeltaSlot, op: EdgeOp) -> Result<usize, EngineError> {
    let mut overlay = DeltaOverlay::new(dataset.graph());
    for prev in &delta.pending {
        // Pending ops were valid when staged and the base graph has not
        // changed since (commits drain pending first), so replay succeeds;
        // a failure here means slot state diverged and must surface.
        overlay.apply(*prev).map_err(|e| {
            EngineError::Internal(format!("pending op {prev:?} stopped applying: {e}"))
        })?;
    }
    overlay.apply(op)?;
    if let Some(wal) = delta.wal.as_mut() {
        wal.append(&op)?;
    }
    delta.pending.push(op);
    Ok(delta.pending.len())
}

/// Folds the pending ops into the maintained index, materializes the
/// mutated graph, and (past the threshold) compacts the log into a v2
/// snapshot. Runs with no registry guard live.
fn commit_ops(
    dataset: &Dataset,
    delta: &mut DeltaSlot,
    policy: &ExecPolicy,
) -> Result<(Dataset, CommitSummary), EngineError> {
    let _span = bestk_obs::span!("phase.delta.commit");
    if delta.pending.is_empty() {
        return Err(EngineError::Mutation("nothing staged to commit".into()));
    }
    // Durability point: marker + fsync. On failure the ops stay staged and
    // the commit can be retried.
    if let Some(wal) = delta.wal.as_mut() {
        wal.commit()?;
    }
    let mut index = match delta.index.take() {
        Some(index) => index,
        // First commit on this slot: seed the maintained index once; every
        // later commit repairs it incrementally.
        None => DeltaIndex::build_with(dataset.graph(), policy),
    };
    for op in &delta.pending {
        if let Err(e) = index.apply(op) {
            // Staged ops were validated against this exact base; reaching
            // here means the slot diverged. The index stays dropped so the
            // next commit reseeds from the dataset.
            return Err(EngineError::Internal(format!(
                "staged op {op:?} failed to apply: {e}"
            )));
        }
    }
    let ops = delta.pending.len();
    delta.pending.clear();
    delta.committed_ops += ops as u64;
    bestk_obs::counter("delta.commits").inc();
    let graph = index.to_csr();
    let best = index.best(Metric::AverageDegree).ok().flatten();
    let summary = CommitSummary {
        ops,
        vertices: graph.num_vertices() as u64,
        edges: graph.num_edges() as u64,
        kmax: index.kmax(),
        best,
        compacted: false,
    };
    let mut committed = Dataset::from_graph(graph);
    delta.index = Some(index);
    let compacted = if delta.committed_ops >= delta.compact_after {
        compact(&mut committed, delta, policy)?
    } else {
        false
    };
    Ok((
        committed,
        CommitSummary {
            compacted,
            ..summary
        },
    ))
}

/// Writes the committed dataset as a v2 snapshot beside the log (temp
/// file then rename, so live mappings of the old snapshot stay valid),
/// then truncates the log back to its header.
fn compact(
    dataset: &mut Dataset,
    delta: &mut DeltaSlot,
    policy: &ExecPolicy,
) -> Result<bool, EngineError> {
    let Some(wal) = delta.wal.as_mut() else {
        return Ok(false);
    };
    let Some(snap) = wal
        .path()
        .to_str()
        .and_then(|p| p.strip_suffix(".wal"))
        .map(PathBuf::from)
    else {
        return Ok(false);
    };
    dataset.ensure_built(policy);
    let tmp = snap.with_extension("bestk.compact");
    crate::snapv2::save_path(dataset, &tmp)?;
    std::fs::rename(&tmp, &snap)?;
    wal.reset()?;
    delta.committed_ops = 0;
    bestk_obs::counter("delta.compactions").inc();
    Ok(true)
}

/// Adopts the sibling write-ahead log of a just-loaded snapshot: opens (or
/// creates) `<path>.wal`, re-applies its committed ops on top of the
/// dataset, and returns the mutated dataset plus the slot state. An
/// unreadable log — or a committed op that no longer applies — is
/// quarantined to `<wal>.quarantine` and the un-mutated dataset is served.
/// Runs with no registry guard live.
pub(crate) fn adopt_wal(
    dataset: Dataset,
    wal_path: &str,
) -> Result<(Dataset, DeltaSlot), EngineError> {
    let (log, ops) = match DeltaLog::open(wal_path) {
        Ok(opened) => opened,
        Err(DeltaError::BadLog(_)) => {
            quarantine_wal(wal_path)?;
            DeltaLog::open(wal_path)?
        }
        Err(e) => return Err(e.into()),
    };
    if ops.is_empty() {
        return Ok((dataset, DeltaSlot::with_wal(log, 0)));
    }
    let mut overlay = DeltaOverlay::new(dataset.graph());
    let mut failed = false;
    for op in &ops {
        if overlay.apply(*op).is_err() {
            failed = true;
            break;
        }
    }
    if failed {
        // The log's committed ops do not fit this snapshot (e.g. the
        // snapshot was rebuilt from its original source): preserve the log
        // for forensics and serve the snapshot as-is.
        drop(log);
        quarantine_wal(wal_path)?;
        let (fresh, _) = DeltaLog::open(wal_path)?;
        return Ok((dataset, DeltaSlot::with_wal(fresh, 0)));
    }
    bestk_obs::counter("delta.replayed_ops").add(ops.len() as u64);
    let graph = overlay.materialize();
    Ok((
        Dataset::from_graph(graph),
        DeltaSlot::with_wal(log, ops.len() as u64),
    ))
}

/// Moves an unusable write-ahead log aside as `<wal>.quarantine`,
/// prefixing one forensic header line: the byte offset of the first bad
/// record and the fnv1a64 of the log from that offset on (see
/// [`bestk_delta::first_bad_record`]). A byte-clean log quarantined for
/// semantic reasons — committed ops that no longer apply — records its
/// full length and whole-file checksum instead. The original bytes follow
/// the header verbatim, so triage never has to re-scan for the damage.
fn quarantine_wal(wal_path: &str) -> Result<(), EngineError> {
    bestk_obs::counter("delta.wal_quarantined").inc();
    let bytes = std::fs::read(wal_path)?;
    let (off, sum) = bestk_delta::first_bad_record(&bytes)
        .unwrap_or((bytes.len() as u64, crate::snapshot::fnv1a(&bytes)));
    let mut out = format!("bestk-quarantine off={off} fnv1a64={sum:016x}\n").into_bytes();
    out.extend_from_slice(&bytes);
    std::fs::write(format!("{wal_path}.quarantine"), out)?;
    std::fs::remove_file(wal_path)?;
    Ok(())
}

impl SharedEngine {
    /// Stages one edge mutation against the named dataset: validated
    /// against the committed graph plus pending ops, write-ahead-logged,
    /// buffered until [`commit_edges`](Self::commit_edges). Returns the
    /// number of pending ops. The registry lock is held only to take the
    /// slot's delta state out and put it back.
    pub fn stage_edge(&self, name: &str, op: EdgeOp) -> Result<usize, EngineError> {
        let (dataset, mut delta) = self.guard().delta_checkout(name)?;
        let result = stage_op(&dataset, &mut delta, op);
        self.guard().delta_restore(name, delta);
        result
    }

    /// Commits every staged op on the named dataset: fsyncs the log, folds
    /// the ops into the maintained index, and installs the mutated graph
    /// as the slot's new dataset. Query artifacts rebuild lazily on the
    /// next query. Fails with a typed error — leaving the ops staged —
    /// when nothing is pending or the log cannot be made durable.
    pub fn commit_edges(
        &self,
        name: &str,
        policy: &ExecPolicy,
    ) -> Result<CommitSummary, EngineError> {
        let (dataset, mut delta) = self.guard().delta_checkout(name)?;
        match commit_ops(&dataset, &mut delta, policy) {
            Ok((committed, summary)) => {
                self.guard().install_mutated(name, committed, delta);
                Ok(summary)
            }
            Err(e) => {
                self.guard().delta_restore(name, delta);
                Err(e)
            }
        }
    }

    /// Number of staged (uncommitted) ops on the named dataset.
    pub fn pending_ops(&self, name: &str) -> Result<usize, EngineError> {
        self.guard().pending_ops(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use crate::snapshot;
    use bestk_graph::generators;

    fn policy() -> ExecPolicy {
        ExecPolicy::Sequential
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bestk-mutate-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn stage_and_commit_mutate_an_in_memory_dataset() {
        let eng = SharedEngine::with_budget(None);
        eng.insert_graph("fig2", generators::paper_figure2());
        assert_eq!(eng.stage_edge("fig2", EdgeOp::Insert(0, 11)).unwrap(), 1);
        assert_eq!(eng.stage_edge("fig2", EdgeOp::Delete(0, 1)).unwrap(), 2);
        assert_eq!(eng.pending_ops("fig2").unwrap(), 2);
        // Queries still see the committed (unmutated) graph while staged.
        let a = eng.query("fig2", &Query::Stats, &policy()).unwrap();
        assert_eq!(a.to_line(), "stats\tn=12\tm=19\tkmax=3\tcores=3");
        let summary = eng.commit_edges("fig2", &policy()).unwrap();
        assert_eq!((summary.ops, summary.vertices, summary.edges), (2, 12, 19));
        assert!(!summary.compacted);
        assert_eq!(eng.pending_ops("fig2").unwrap(), 0);
        let a = eng.query("fig2", &Query::Stats, &policy()).unwrap();
        assert!(
            a.to_line().starts_with("stats\tn=12\tm=19"),
            "{}",
            a.to_line()
        );
        // The mutated graph matches building the same graph from scratch.
        let mut b = bestk_graph::GraphBuilder::new();
        b.reserve_vertices(12);
        let base = generators::paper_figure2();
        for (u, v) in base.edges() {
            if (u, v) != (0, 1) {
                b.add_edge(u, v);
            }
        }
        b.add_edge(0, 11);
        let expect = b.build();
        let eng2 = SharedEngine::with_budget(None);
        eng2.insert_graph("want", expect);
        let q = Query::BestKSet {
            metric: Metric::AverageDegree,
        };
        assert_eq!(
            eng.query("fig2", &q, &policy()).unwrap().to_line(),
            eng2.query("want", &q, &policy()).unwrap().to_line()
        );
    }

    #[test]
    fn invalid_ops_and_empty_commits_are_typed_rejections() {
        let eng = SharedEngine::with_budget(None);
        eng.insert_graph("g", generators::paper_figure2());
        let err = eng.commit_edges("g", &policy()).unwrap_err();
        assert!(matches!(err, EngineError::Mutation(_)), "{err}");
        let err = eng.stage_edge("g", EdgeOp::Insert(3, 3)).unwrap_err();
        assert!(matches!(err, EngineError::Mutation(_)), "{err}");
        let err = eng.stage_edge("g", EdgeOp::Delete(0, 11)).unwrap_err();
        assert!(matches!(err, EngineError::Mutation(_)), "{err}");
        // Duplicate insert across the pending overlay is caught too.
        eng.stage_edge("g", EdgeOp::Insert(0, 11)).unwrap();
        let err = eng.stage_edge("g", EdgeOp::Insert(0, 11)).unwrap_err();
        assert!(matches!(err, EngineError::Mutation(_)), "{err}");
        assert_eq!(eng.pending_ops("g").unwrap(), 1);
        let err = eng.stage_edge("nope", EdgeOp::Insert(0, 1)).unwrap_err();
        assert!(matches!(err, EngineError::UnknownDataset(_)), "{err}");
    }

    #[test]
    fn a_checked_out_delta_rejects_concurrent_mutations() {
        let eng = SharedEngine::with_budget(None);
        eng.insert_graph("g", generators::paper_figure2());
        let (_ds, delta) = eng.guard().delta_checkout("g").unwrap();
        let err = eng.stage_edge("g", EdgeOp::Insert(0, 11)).unwrap_err();
        assert!(matches!(err, EngineError::Mutation(_)), "{err}");
        eng.guard().delta_restore("g", delta);
        eng.stage_edge("g", EdgeOp::Insert(0, 11)).unwrap();
    }

    #[test]
    fn wal_replays_committed_mutations_across_restarts() {
        let dir = temp_dir("restart");
        let snap = dir.join("g.bestk");
        let wal = dir.join("g.bestk.wal");
        for stale in [&wal, &dir.join("g.bestk.wal.quarantine")] {
            let _ = std::fs::remove_file(stale);
        }
        let mut ds = Dataset::from_graph(generators::paper_figure2());
        ds.ensure_built(&policy());
        snapshot::save_path(&ds, &snap).unwrap();

        let line;
        {
            let eng = SharedEngine::with_budget(None);
            eng.load_snapshot_with_fallback(
                "g",
                snap.to_str().unwrap(),
                None,
                &snapshot::RetryPolicy::none(),
                &policy(),
            )
            .unwrap();
            eng.stage_edge("g", EdgeOp::Insert(0, 11)).unwrap();
            eng.stage_edge("g", EdgeOp::Delete(0, 1)).unwrap();
            eng.commit_edges("g", &policy()).unwrap();
            // Staged-but-uncommitted ops must NOT survive the restart.
            eng.stage_edge("g", EdgeOp::Insert(1, 10)).unwrap();
            line = eng.query("g", &Query::Stats, &policy()).unwrap().to_line();
        }
        let eng = SharedEngine::with_budget(None);
        eng.load_snapshot_with_fallback(
            "g",
            snap.to_str().unwrap(),
            None,
            &snapshot::RetryPolicy::none(),
            &policy(),
        )
        .unwrap();
        assert_eq!(
            eng.query("g", &Query::Stats, &policy()).unwrap().to_line(),
            line
        );
        assert_eq!(eng.pending_ops("g").unwrap(), 0);
        for f in [snap, wal] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn commit_past_the_threshold_compacts_into_a_v2_snapshot() {
        let dir = temp_dir("compact");
        let snap = dir.join("g.bestk");
        let wal = dir.join("g.bestk.wal");
        let _ = std::fs::remove_file(&wal);
        let mut ds = Dataset::from_graph(generators::paper_figure2());
        ds.ensure_built(&policy());
        snapshot::save_path(&ds, &snap).unwrap();

        let eng = SharedEngine::with_budget(None);
        eng.load_snapshot_with_fallback(
            "g",
            snap.to_str().unwrap(),
            None,
            &snapshot::RetryPolicy::none(),
            &policy(),
        )
        .unwrap();
        {
            let mut guard = eng.guard();
            let (_, mut delta) = guard.delta_checkout("g").unwrap();
            delta.compact_after = 1;
            guard.delta_restore("g", delta);
        }
        eng.stage_edge("g", EdgeOp::Insert(0, 11)).unwrap();
        let summary = eng.commit_edges("g", &policy()).unwrap();
        assert!(summary.compacted);
        let line = eng.query("g", &Query::Stats, &policy()).unwrap().to_line();
        // The log is back to its bare header...
        assert_eq!(
            std::fs::metadata(&wal).unwrap().len(),
            bestk_delta::WAL_MAGIC.len() as u64
        );
        // ...and the snapshot at the original path is now v2 and carries
        // the mutation on its own.
        let eng2 = SharedEngine::with_budget(None);
        eng2.load_snapshot_with_fallback(
            "g",
            snap.to_str().unwrap(),
            None,
            &snapshot::RetryPolicy::none(),
            &policy(),
        )
        .unwrap();
        assert_eq!(
            eng2.query("g", &Query::Stats, &policy()).unwrap().to_line(),
            line
        );
        for f in [snap, wal] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn an_alien_wal_is_quarantined_and_the_snapshot_served() {
        let dir = temp_dir("quarantine");
        let snap = dir.join("g.bestk");
        let wal = dir.join("g.bestk.wal");
        let quarantine = dir.join("g.bestk.wal.quarantine");
        for stale in [&wal, &quarantine] {
            let _ = std::fs::remove_file(stale);
        }
        let mut ds = Dataset::from_graph(generators::paper_figure2());
        ds.ensure_built(&policy());
        snapshot::save_path(&ds, &snap).unwrap();
        std::fs::write(&wal, b"not a delta log at all").unwrap();

        let eng = SharedEngine::with_budget(None);
        eng.load_snapshot_with_fallback(
            "g",
            snap.to_str().unwrap(),
            None,
            &snapshot::RetryPolicy::none(),
            &policy(),
        )
        .unwrap();
        assert!(quarantine.exists(), "bad log must be preserved");
        // The quarantine file leads with the forensic header — damage at
        // offset 0 (no magic), checksum over the whole preserved log —
        // followed by the original bytes verbatim.
        let preserved = std::fs::read(&quarantine).unwrap();
        let alien = b"not a delta log at all";
        let (off, sum) = bestk_delta::first_bad_record(alien).unwrap();
        assert_eq!(off, 0);
        let header = format!("bestk-quarantine off=0 fnv1a64={sum:016x}\n");
        assert_eq!(&preserved[..header.len()], header.as_bytes());
        assert_eq!(&preserved[header.len()..], alien);
        let a = eng.query("g", &Query::Stats, &policy()).unwrap();
        assert_eq!(a.to_line(), "stats\tn=12\tm=19\tkmax=3\tcores=3");
        // Mutations keep working on the fresh log.
        eng.stage_edge("g", EdgeOp::Insert(0, 11)).unwrap();
        eng.commit_edges("g", &policy()).unwrap();
        for f in [snap, wal, quarantine] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn index_bytes_pressure_the_budget_and_eviction_survives_mutation() {
        // Satellite: the maintained index's heap counts toward the LRU
        // budget, and eviction keeps working while a dataset mutates.
        let eng = SharedEngine::with_budget(Some(1));
        let base = generators::erdos_renyi_gnm(60, 200, 1);
        eng.insert_graph("hot", base.clone());
        eng.insert_graph("cold", generators::erdos_renyi_gnm(60, 200, 2));
        // Build `cold`'s artifacts: with a 1-byte budget it is the standing
        // eviction candidate whenever another slot is touched.
        let cold_line = eng
            .query("cold", &Query::Stats, &policy())
            .unwrap()
            .to_line();
        for op in generators::edge_stream_mixed(&base, 10, 5) {
            eng.stage_edge("hot", op).unwrap();
        }
        eng.commit_edges("hot", &policy()).unwrap();
        {
            let mut guard = eng.guard();
            // The commit seeded `hot`'s maintained index; its heap shows up
            // in the registry total beyond the per-dataset bytes.
            let dataset_only: usize = guard.dataset_rows().iter().map(|r| r.resident_bytes).sum();
            assert!(
                guard.resident_bytes() > dataset_only,
                "index heap must be counted: total {} vs datasets {}",
                guard.resident_bytes(),
                dataset_only
            );
            let (_, delta) = guard.delta_checkout("hot").unwrap();
            assert!(delta.heap_bytes() > 0, "committed slot keeps its index");
            guard.delta_restore("hot", delta);
            // The commit's budget pass evicted `cold` (the only built,
            // unprotected slot) while `hot` was mid-mutation.
            let built: Vec<(String, bool)> = guard
                .dataset_rows()
                .iter()
                .map(|r| (r.name.clone(), r.built))
                .collect();
            assert_eq!(
                built,
                vec![("cold".to_owned(), false), ("hot".to_owned(), false)]
            );
        }
        // Both datasets still answer correctly after the squeeze: `cold`
        // rebuilds to the identical answer, `hot` serves the mutated graph.
        assert_eq!(
            eng.query("cold", &Query::Stats, &policy())
                .unwrap()
                .to_line(),
            cold_line
        );
        eng.query("hot", &Query::Stats, &policy()).unwrap();
    }

    #[test]
    fn successive_commits_reuse_the_maintained_index() {
        let eng = SharedEngine::with_budget(None);
        eng.insert_graph("g", generators::erdos_renyi_gnm(40, 100, 7));
        let ops = generators::edge_stream_mixed(&generators::erdos_renyi_gnm(40, 100, 7), 30, 3);
        for chunk in ops.chunks(5) {
            for op in chunk {
                eng.stage_edge("g", *op).unwrap();
            }
            let summary = eng.commit_edges("g", &policy()).unwrap();
            assert_eq!(summary.ops, chunk.len());
        }
        // Final state equals a from-scratch build over the same ops.
        let mut index = DeltaIndex::build(&generators::erdos_renyi_gnm(40, 100, 7));
        for op in &ops {
            index.apply(op).unwrap();
        }
        let q = Query::BestKSet {
            metric: Metric::AverageDegree,
        };
        let got = eng.query("g", &q, &policy()).unwrap().to_line();
        let best = index.best(Metric::AverageDegree).unwrap().unwrap();
        assert!(got.contains(&format!("k={}", best.k)), "{got}");
    }
}
