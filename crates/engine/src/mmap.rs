//! Read-only memory mapping for zero-copy snapshot loads.
//!
//! [`Mmap`] maps a file into the address space so the v2 snapshot opener
//! can borrow graph and index sections straight out of the page cache —
//! no allocation, no copy, and no full-file read before the first query
//! touches a page. On non-unix targets (or when the raw `mmap` call
//! fails) it degrades to an ordinary buffered read, which keeps the same
//! API observable behaviour at the cost of the copy.
//!
//! This is the workspace's one unsafe seam: the two FFI calls plus the
//! borrow of the mapped pages live inside the private `sys` module, and
//! the safety argument is local — the mapping is `PROT_READ`/private, it
//! outlives every borrowed slice (slices borrow from `Mmap`, which unmaps
//! only on drop), and the kernel guarantees the region stays valid for
//! the mapping's lifetime.
//
// bestk-analyze: allow-file(forbid-unsafe) — the crate root carries
// `#![deny(unsafe_code)]` with the allowance scoped to this module's
// `sys` block; mmap is inherently an FFI operation.

use std::fs::File;
use std::io;
use std::path::Path;

/// A read-only view of a file: memory-mapped where supported, a buffered
/// read elsewhere. Cheap to share behind an `Arc`; the mapping is unmapped
/// when the last handle drops.
#[derive(Debug)]
pub struct Mmap {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    /// A live kernel mapping (unix only).
    #[cfg(unix)]
    Mapped(sys::Mapping),
    /// Fallback: the whole file read into memory.
    Owned(Vec<u8>),
}

impl Mmap {
    /// Maps `path` read-only. Empty files yield an empty owned buffer
    /// (mapping zero bytes is an error on most kernels). Falls back to a
    /// full read if the mapping cannot be established.
    pub fn open(path: &Path) -> io::Result<Mmap> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, "file exceeds address space")
        })?;
        if len == 0 {
            return Ok(Mmap {
                inner: Inner::Owned(Vec::new()),
            });
        }
        #[cfg(unix)]
        {
            if let Some(mapping) = sys::Mapping::map_readonly(&file, len) {
                return Ok(Mmap {
                    inner: Inner::Mapped(mapping),
                });
            }
        }
        let bytes = std::fs::read(path)?;
        Ok(Mmap {
            inner: Inner::Owned(bytes),
        })
    }

    /// Wraps an in-memory buffer in the `Mmap` interface — used by tests
    /// and by callers that already hold the snapshot bytes.
    pub fn from_vec(bytes: Vec<u8>) -> Mmap {
        Mmap {
            inner: Inner::Owned(bytes),
        }
    }

    /// The mapped (or read) bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped(m) => m.as_slice(),
            Inner::Owned(v) => v,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when the file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the bytes come from a live kernel mapping rather than a
    /// buffered read — observability surfaces report this distinction.
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped(_) => true,
            Inner::Owned(_) => false,
        }
    }
}

#[cfg(unix)]
mod sys {
    //! The raw `mmap(2)`/`munmap(2)` calls, self-declared so the
    //! workspace stays dependency-free.

    use std::ffi::c_void;
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// An established read-only private mapping; unmapped on drop.
    #[derive(Debug)]
    pub(super) struct Mapping {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is immutable (PROT_READ, MAP_PRIVATE) and the
    // region stays valid until `munmap` in Drop, so shared references from
    // any thread observe frozen bytes.
    #[allow(unsafe_code)]
    unsafe impl Send for Mapping {}
    #[allow(unsafe_code)]
    unsafe impl Sync for Mapping {}

    impl Mapping {
        /// Attempts the mapping; `None` on failure (caller falls back to a
        /// read). `len` must be non-zero.
        #[allow(unsafe_code)]
        pub(super) fn map_readonly(file: &File, len: usize) -> Option<Mapping> {
            let fd = file.as_raw_fd();
            // SAFETY: `fd` is a live descriptor owned by `file` for the
            // duration of the call; a NULL addr lets the kernel choose the
            // placement; `len > 0` is guaranteed by the caller.
            let ptr = unsafe { mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, fd, 0) };
            const MAP_FAILED: usize = usize::MAX;
            if ptr.is_null() || ptr as usize == MAP_FAILED {
                return None;
            }
            Some(Mapping { ptr, len })
        }

        #[allow(unsafe_code)]
        pub(super) fn as_slice(&self) -> &[u8] {
            // SAFETY: `ptr` points at a live `len`-byte PROT_READ mapping
            // that is only torn down in Drop, and `&self` ties the slice
            // lifetime to the mapping's.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mapping {
        #[allow(unsafe_code)]
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` describe exactly the region returned by
            // `mmap`, unmapped exactly once.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_a_real_file() {
        let dir = std::env::temp_dir().join("bestk-mmap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("payload.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::write(&path, &payload).unwrap();
        let map = Mmap::open(&path).unwrap();
        assert_eq!(map.as_slice(), &payload[..]);
        assert_eq!(map.len(), payload.len());
        assert!(!map.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_file_is_empty_slice() {
        let dir = std::env::temp_dir().join("bestk-mmap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let map = Mmap::open(&path).unwrap();
        assert!(map.is_empty());
        assert!(!map.is_mapped());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_errors() {
        assert!(Mmap::open(Path::new("/nonexistent/bestk/file")).is_err());
    }

    #[test]
    fn from_vec_round_trips() {
        let map = Mmap::from_vec(vec![1, 2, 3]);
        assert_eq!(map.as_slice(), &[1, 2, 3]);
        assert!(!map.is_mapped());
    }
}
