//! The versioned, checksummed `.bestk` snapshot format.
//!
//! A snapshot persists one dataset's full index — everything
//! [`Artifacts`] holds — so a later process answers best-k queries after a
//! pair of bulk reads instead of an `O(m^1.5)` rebuild.
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! magic    : 8 bytes = b"BESTKSS1"
//! version  : u32     (currently 1; any other value is VersionSkew)
//! sections : u32     (section count)
//! table    : sections × { id u32, reserved u32, offset u64, len u64, fnv1a u64 }
//! payload  : the concatenated section bodies, contiguous, in table order
//! ```
//!
//! Section ids and body layouts:
//!
//! | id | name           | body |
//! |----|----------------|------|
//! | 1  | `graph`        | `n u64, nnz u64, offsets (n+1)×u64, neighbors nnz×u32` |
//! | 2  | `decomposition`| `n u64, coreness n×u32, order n×u32, peel n×u32, s u64, shell_start s×u64` |
//! | 3  | `ordering`     | `nnz u64, adj nnz×u32, same n×u32, plus n×u32, high n×u32` |
//! | 4  | `forest`       | `nodes u64, nodes × {coreness u32, parent u32, nv u64, vertices nv×u32}, vertex_node n×u32` |
//! | 5  | `set-profile`  | `kmax u32, tri u8, n u64, m u64, count u64, count × 5×u64` |
//! | 6  | `core-profile` | `tri u8, n u64, m u64, count u64, coreness count×u32, count × 5×u64` |
//!
//! A forest parent of `u32::MAX` encodes "root"; child lists are rebuilt on
//! load. Every section carries an FNV-1a 64 checksum, verified before the
//! section is parsed; after parsing, each structure's invariants are
//! re-checked through the core crate's `from_parts` constructors, so a
//! corrupted or hand-edited snapshot is rejected with a structured
//! [`EngineError`] — never a panic — no matter where the damage sits.

use std::io::{Read, Write};
use std::path::Path;
use std::time::Duration;

use bestk_exec::ExecPolicy;

use crate::engine::LoadOutcome;

use bestk_core::{
    CoreDecomposition, CoreForest, CoreForestNode, CoreSetProfile, GraphContext, OrderedGraph,
    PrimaryValues, SingleCoreProfile,
};
use bestk_faults::sites;
use bestk_graph::CsrGraph;

use crate::dataset::{Artifacts, Dataset};
use crate::error::EngineError;

/// The `.bestk` magic bytes.
pub const MAGIC: &[u8; 8] = b"BESTKSS1";
/// The single format version this build reads and writes.
pub const VERSION: u32 = 1;

const SEC_GRAPH: u32 = 1;
const SEC_DECOMP: u32 = 2;
const SEC_ORDERING: u32 = 3;
const SEC_FOREST: u32 = 4;
const SEC_SET_PROFILE: u32 = 5;
const SEC_CORE_PROFILE: u32 = 6;

fn section_name(id: u32) -> Option<&'static str> {
    match id {
        SEC_GRAPH => Some("graph"),
        SEC_DECOMP => Some("decomposition"),
        SEC_ORDERING => Some("ordering"),
        SEC_FOREST => Some("forest"),
        SEC_SET_PROFILE => Some("set-profile"),
        SEC_CORE_PROFILE => Some("core-profile"),
        _ => None,
    }
}

/// FNV-1a 64 over a byte slice (the workspace is dependency-free, so the
/// checksum is hand-rolled; FNV is fast and order-sensitive, which is all a
/// corruption check needs).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------- writing

pub(crate) fn put_u32(buf: &mut Vec<u8>, x: u32) {
    buf.extend_from_slice(&x.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, x: u64) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn put_primaries(buf: &mut Vec<u8>, pv: &PrimaryValues) {
    put_u64(buf, pv.num_vertices);
    put_u64(buf, pv.internal_edges);
    put_u64(buf, pv.boundary_edges);
    put_u64(buf, pv.triangles);
    put_u64(buf, pv.triplets);
}

/// The v1 graph body is byte-for-byte the [`bestk_graph::ByteCsr`]
/// layout, so any backend serializes through the view-generic encoder.
fn encode_graph<G: bestk_graph::GraphView>(g: &G) -> Vec<u8> {
    bestk_graph::bytecsr::encode_view(g)
}

fn encode_decomp(d: &CoreDecomposition) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, d.num_vertices() as u64);
    for &c in d.coreness_slice() {
        put_u32(&mut buf, c);
    }
    for &v in d.vertices_by_coreness() {
        put_u32(&mut buf, v);
    }
    for &v in d.peel_ordering() {
        put_u32(&mut buf, v);
    }
    put_u64(&mut buf, d.shell_starts().len() as u64);
    for &s in d.shell_starts() {
        put_u64(&mut buf, s as u64);
    }
    buf
}

fn encode_ordering(art: &Artifacts) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, art.adj.len() as u64);
    for &v in &art.adj {
        put_u32(&mut buf, v);
    }
    for tags in [&art.same, &art.plus, &art.high] {
        for &t in tags.iter() {
            put_u32(&mut buf, t);
        }
    }
    buf
}

fn encode_forest(f: &CoreForest) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, f.node_count() as u64);
    for node in f.nodes() {
        put_u32(&mut buf, node.coreness);
        put_u32(&mut buf, node.parent.unwrap_or(u32::MAX));
        put_u64(&mut buf, node.vertices.len() as u64);
        for &v in &node.vertices {
            put_u32(&mut buf, v);
        }
    }
    for &nid in f.vertex_nodes() {
        put_u32(&mut buf, nid);
    }
    buf
}

pub(crate) fn encode_set_profile(p: &CoreSetProfile) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u32(&mut buf, p.kmax);
    buf.push(u8::from(p.has_triangles));
    put_u64(&mut buf, p.context.total_vertices);
    put_u64(&mut buf, p.context.total_edges);
    put_u64(&mut buf, p.primaries.len() as u64);
    for pv in &p.primaries {
        put_primaries(&mut buf, pv);
    }
    buf
}

pub(crate) fn encode_core_profile(p: &SingleCoreProfile) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.push(u8::from(p.has_triangles));
    put_u64(&mut buf, p.context.total_vertices);
    put_u64(&mut buf, p.context.total_edges);
    put_u64(&mut buf, p.primaries.len() as u64);
    for &c in &p.coreness {
        put_u32(&mut buf, c);
    }
    for pv in &p.primaries {
        put_primaries(&mut buf, pv);
    }
    buf
}

/// Serializes a built dataset to a writer in the `.bestk` format.
///
/// The dataset must have its artifacts resident (build them first); a bare
/// graph is rejected with [`EngineError::BadSnapshot`].
pub fn save<W: Write>(dataset: &Dataset, writer: W) -> Result<(), EngineError> {
    let art = dataset.artifacts().ok_or_else(|| {
        EngineError::BadSnapshot("cannot save a dataset whose artifacts are not built".into())
    })?;
    let sections: [(u32, Vec<u8>); 6] = [
        (SEC_GRAPH, encode_graph(dataset.graph())),
        (SEC_DECOMP, encode_decomp(&art.decomp)),
        (SEC_ORDERING, encode_ordering(art)),
        (SEC_FOREST, encode_forest(&art.forest)),
        (SEC_SET_PROFILE, encode_set_profile(&art.set_profile)),
        (SEC_CORE_PROFILE, encode_core_profile(&art.core_profile)),
    ];
    let mut w = std::io::BufWriter::new(writer);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&bestk_graph::cast::u32_of(sections.len()).to_le_bytes())?;
    let header_len = 16 + 32 * sections.len() as u64;
    let mut offset = header_len;
    for (id, body) in &sections {
        w.write_all(&id.to_le_bytes())?;
        w.write_all(&0u32.to_le_bytes())?;
        w.write_all(&offset.to_le_bytes())?;
        w.write_all(&(body.len() as u64).to_le_bytes())?;
        w.write_all(&fnv1a(body).to_le_bytes())?;
        offset = offset.saturating_add(body.len() as u64);
    }
    for (_, body) in &sections {
        w.write_all(body)?;
    }
    w.flush()?;
    Ok(())
}

/// Bounded retry policy for transient snapshot I/O (`Interrupted`,
/// `WouldBlock`, `TimedOut`, `WriteZero`). Corruption is *not* retried —
/// re-reading bad bytes cannot fix them; see
/// [`Engine::load_snapshot_with_fallback`](crate::Engine::load_snapshot_with_fallback)
/// for the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, first try included (`0` behaves as `1`).
    pub attempts: u32,
    /// Base backoff; attempt `i` sleeps `i × backoff` before retrying.
    pub backoff: Duration,
}

impl RetryPolicy {
    /// A single attempt, no retries.
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            backoff: Duration::ZERO,
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            backoff: Duration::from_millis(1),
        }
    }
}

fn is_transient(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::WriteZero
    )
}

pub(crate) fn with_retries<T>(
    policy: &RetryPolicy,
    mut op: impl FnMut() -> std::io::Result<T>,
) -> std::io::Result<T> {
    let attempts = policy.attempts.max(1);
    let mut attempt = 1;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if is_transient(&e) && attempt < attempts => {
                if !policy.backoff.is_zero() {
                    std::thread::sleep(policy.backoff * attempt);
                }
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// One write attempt, with the `snapshot.write` failpoint threaded in: an
/// injected truncation persists a *partial* file and then fails, exactly
/// like a mid-write crash, so retries must overwrite from scratch.
pub(crate) fn write_snapshot_bytes(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(e) = bestk_faults::io_error(sites::SNAPSHOT_WRITE) {
        return Err(e);
    }
    if let Some(keep) = bestk_faults::truncation(sites::SNAPSHOT_WRITE, bytes.len()) {
        std::fs::write(path, &bytes[..keep])?;
        return Err(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            "injected mid-write crash",
        ));
    }
    std::fs::write(path, bytes)
}

/// One read attempt, with the `snapshot.read` failpoint threaded in
/// (injected I/O errors before the read; injected bit flips / truncation
/// on the bytes after it, caught downstream by the checksums).
fn read_snapshot_bytes(path: &Path) -> std::io::Result<Vec<u8>> {
    if let Some(e) = bestk_faults::io_error(sites::SNAPSHOT_READ) {
        return Err(e);
    }
    let mut bytes = std::fs::read(path)?;
    bestk_faults::corrupt_buffer(sites::SNAPSHOT_READ, &mut bytes);
    Ok(bytes)
}

/// [`save`] to a file path (one attempt; see [`save_path_with_retry`]).
pub fn save_path<P: AsRef<Path>>(dataset: &Dataset, path: P) -> Result<(), EngineError> {
    save_path_with_retry(dataset, path, &RetryPolicy::none())
}

/// [`save`] to a file path, retrying transient I/O failures under
/// `policy`. The snapshot is serialized once up front; each attempt
/// rewrites the whole file, so a partially-persisted earlier attempt is
/// healed rather than appended to.
pub fn save_path_with_retry<P: AsRef<Path>>(
    dataset: &Dataset,
    path: P,
    policy: &RetryPolicy,
) -> Result<(), EngineError> {
    let mut buf = Vec::new();
    save(dataset, &mut buf)?;
    with_retries(policy, || write_snapshot_bytes(path.as_ref(), &buf)).map_err(EngineError::Io)
}

// ---------------------------------------------------------------- reading

/// A bounds-checked cursor over one section's bytes: every overrun is a
/// [`EngineError::Truncated`] naming the section, and `finish` rejects
/// bytes the layout did not account for.
pub(crate) struct SectionReader<'a> {
    buf: &'a [u8],
    at: usize,
    section: &'static str,
}

impl<'a> SectionReader<'a> {
    pub(crate) fn new(buf: &'a [u8], section: &'static str) -> Self {
        SectionReader {
            buf,
            at: 0,
            section,
        }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    pub(crate) fn take(&mut self, len: usize) -> Result<&'a [u8], EngineError> {
        if len > self.remaining() {
            return Err(EngineError::Truncated {
                section: self.section,
            });
        }
        let slice = &self.buf[self.at..self.at + len];
        self.at += len;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, EngineError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, EngineError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, EngineError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// A u64 count/offset that must fit `usize` (32-bit safety) and is
    /// implicitly bounded by the section length on any later read.
    pub(crate) fn count(&mut self) -> Result<usize, EngineError> {
        let raw = self.u64()?;
        usize::try_from(raw).map_err(|_| {
            EngineError::BadSnapshot(format!(
                "{}: count {raw} does not fit this platform's usize",
                self.section
            ))
        })
    }

    pub(crate) fn u32_vec(&mut self, count: usize) -> Result<Vec<u32>, EngineError> {
        let bytes = count.checked_mul(4).ok_or(EngineError::Truncated {
            section: self.section,
        })?;
        let raw = self.take(bytes)?;
        Ok(raw
            .chunks_exact(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect())
    }

    pub(crate) fn u64_vec(&mut self, count: usize) -> Result<Vec<u64>, EngineError> {
        let bytes = count.checked_mul(8).ok_or(EngineError::Truncated {
            section: self.section,
        })?;
        let raw = self.take(bytes)?;
        Ok(raw
            .chunks_exact(8)
            .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
            .collect())
    }

    pub(crate) fn primaries(&mut self, count: usize) -> Result<Vec<PrimaryValues>, EngineError> {
        let mut out = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            out.push(PrimaryValues {
                num_vertices: self.u64()?,
                internal_edges: self.u64()?,
                boundary_edges: self.u64()?,
                triangles: self.u64()?,
                triplets: self.u64()?,
            });
        }
        Ok(out)
    }

    pub(crate) fn finish(self) -> Result<(), EngineError> {
        if self.remaining() != 0 {
            return Err(EngineError::BadSnapshot(format!(
                "{}: {} trailing byte(s) inside the section",
                self.section,
                self.remaining()
            )));
        }
        Ok(())
    }
}

pub(crate) fn bad(section: &str, msg: String) -> EngineError {
    EngineError::BadSnapshot(format!("{section}: {msg}"))
}

fn decode_graph(body: &[u8]) -> Result<CsrGraph, EngineError> {
    let mut r = SectionReader::new(body, "graph");
    let n = r.count()?;
    let nnz = r.count()?;
    let offsets_raw = r.u64_vec(
        n.checked_add(1)
            .ok_or(EngineError::Truncated { section: "graph" })?,
    )?;
    let mut offsets = Vec::with_capacity(offsets_raw.len());
    for off in offsets_raw {
        offsets.push(
            usize::try_from(off)
                .map_err(|_| bad("graph", format!("offset {off} does not fit usize")))?,
        );
    }
    let neighbors = r.u32_vec(nnz)?;
    r.finish()?;
    // bestk-analyze: allow(no-raw-graph) — the blessed deserializer boundary for untrusted bytes
    CsrGraph::try_from_parts(offsets, neighbors).map_err(EngineError::Graph)
}

fn decode_decomp(body: &[u8], graph: &CsrGraph) -> Result<CoreDecomposition, EngineError> {
    let mut r = SectionReader::new(body, "decomposition");
    let n = r.count()?;
    if n != graph.num_vertices() {
        return Err(bad(
            "decomposition",
            format!(
                "declares {n} vertices but the graph has {}",
                graph.num_vertices()
            ),
        ));
    }
    let coreness = r.u32_vec(n)?;
    let order = r.u32_vec(n)?;
    let peel = r.u32_vec(n)?;
    let shells = r.count()?;
    let shell_raw = r.u64_vec(shells)?;
    r.finish()?;
    let mut shell_start = Vec::with_capacity(shell_raw.len());
    for s in shell_raw {
        shell_start.push(usize::try_from(s).map_err(|_| {
            bad(
                "decomposition",
                format!("shell boundary {s} does not fit usize"),
            )
        })?);
    }
    CoreDecomposition::from_parts(coreness, order, peel, shell_start)
        .map_err(|msg| bad("decomposition", msg))
}

/// Decodes and validates the ordering section, returning the owned arrays
/// (validation happens inside `OrderedGraph::from_parts`, which borrows the
/// graph and decomposition only transiently).
fn decode_ordering(
    body: &[u8],
    graph: &CsrGraph,
    decomp: &CoreDecomposition,
) -> Result<(Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>), EngineError> {
    let mut r = SectionReader::new(body, "ordering");
    let nnz = r.count()?;
    // bestk-analyze: allow(no-raw-graph) — ordering sections mirror the raw adjacency layout
    let adj_len = graph.raw_neighbors().len();
    if nnz != adj_len {
        return Err(bad(
            "ordering",
            format!("declares {nnz} adjacency entries but the graph has {adj_len}"),
        ));
    }
    let adj = r.u32_vec(nnz)?;
    let n = graph.num_vertices();
    let same = r.u32_vec(n)?;
    let plus = r.u32_vec(n)?;
    let high = r.u32_vec(n)?;
    r.finish()?;
    let ordered = OrderedGraph::from_parts(graph, decomp, adj, same, plus, high)
        .map_err(|msg| bad("ordering", msg))?;
    Ok(ordered.into_parts())
}

fn decode_forest(body: &[u8], graph: &CsrGraph) -> Result<CoreForest, EngineError> {
    let mut r = SectionReader::new(body, "forest");
    let node_count = r.count()?;
    let mut nodes = Vec::with_capacity(node_count.min(1 << 16));
    for _ in 0..node_count {
        let coreness = r.u32()?;
        let parent_raw = r.u32()?;
        let nv = r.count()?;
        let vertices = r.u32_vec(nv)?;
        nodes.push(CoreForestNode {
            coreness,
            vertices,
            parent: (parent_raw != u32::MAX).then_some(parent_raw),
            children: Vec::new(),
        });
    }
    let vertex_node = r.u32_vec(graph.num_vertices())?;
    r.finish()?;
    CoreForest::from_parts(nodes, vertex_node).map_err(|msg| bad("forest", msg))
}

fn decode_context(
    r: &mut SectionReader<'_>,
    section: &str,
    graph: &CsrGraph,
) -> Result<GraphContext, EngineError> {
    let total_vertices = r.u64()?;
    let total_edges = r.u64()?;
    if total_vertices != graph.num_vertices() as u64 || total_edges != graph.num_edges() as u64 {
        return Err(bad(
            section,
            format!(
                "context ({total_vertices} vertices, {total_edges} edges) disagrees with the graph ({}, {})",
                graph.num_vertices(),
                graph.num_edges()
            ),
        ));
    }
    Ok(GraphContext {
        total_vertices,
        total_edges,
    })
}

fn decode_set_profile(
    body: &[u8],
    graph: &CsrGraph,
    decomp: &CoreDecomposition,
) -> Result<CoreSetProfile, EngineError> {
    let mut r = SectionReader::new(body, "set-profile");
    let kmax = r.u32()?;
    let has_triangles = r.u8()? != 0;
    let context = decode_context(&mut r, "set-profile", graph)?;
    let count = r.count()?;
    let primaries = r.primaries(count)?;
    r.finish()?;
    if kmax != decomp.kmax() {
        return Err(bad(
            "set-profile",
            format!(
                "kmax {kmax} disagrees with the decomposition's {}",
                decomp.kmax()
            ),
        ));
    }
    if count != kmax as usize + 1 {
        return Err(bad(
            "set-profile",
            format!("has {count} entries; kmax {kmax} requires {}", kmax + 1),
        ));
    }
    Ok(CoreSetProfile {
        kmax,
        primaries,
        has_triangles,
        context,
    })
}

fn decode_core_profile(
    body: &[u8],
    graph: &CsrGraph,
    forest: &CoreForest,
) -> Result<SingleCoreProfile, EngineError> {
    let mut r = SectionReader::new(body, "core-profile");
    let has_triangles = r.u8()? != 0;
    let context = decode_context(&mut r, "core-profile", graph)?;
    let count = r.count()?;
    let coreness = r.u32_vec(count)?;
    let primaries = r.primaries(count)?;
    r.finish()?;
    if count != forest.node_count() {
        return Err(bad(
            "core-profile",
            format!(
                "has {count} entries but the forest has {} nodes",
                forest.node_count()
            ),
        ));
    }
    for (i, (&c, node)) in coreness.iter().zip(forest.nodes()).enumerate() {
        if c != node.coreness {
            return Err(bad(
                "core-profile",
                format!(
                    "entry {i} has coreness {c} but forest node {i} has {}",
                    node.coreness
                ),
            ));
        }
    }
    Ok(SingleCoreProfile {
        primaries,
        coreness,
        has_triangles,
        context,
    })
}

/// Parses and validates a whole snapshot held in memory.
///
/// Rejections are structured: [`EngineError::BadMagic`],
/// [`EngineError::VersionSkew`], [`EngineError::Truncated`],
/// [`EngineError::ChecksumMismatch`], [`EngineError::TrailingBytes`],
/// [`EngineError::MissingSection`], or [`EngineError::BadSnapshot`] for
/// structural invariant violations.
pub fn load_bytes(buf: &[u8]) -> Result<Dataset, EngineError> {
    if buf.len() < 8 {
        return Err(EngineError::Truncated { section: "magic" });
    }
    if &buf[..8] != MAGIC {
        return Err(EngineError::BadMagic);
    }
    if buf.len() < 16 {
        return Err(EngineError::Truncated { section: "header" });
    }
    let version = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
    if version != VERSION {
        return Err(EngineError::VersionSkew {
            found: version,
            supported: VERSION,
        });
    }
    let section_count = u32::from_le_bytes([buf[12], buf[13], buf[14], buf[15]]) as usize;
    let header_len = section_count
        .checked_mul(32)
        .and_then(|t| t.checked_add(16))
        .ok_or(EngineError::Truncated {
            section: "section table",
        })?;
    if buf.len() < header_len {
        return Err(EngineError::Truncated {
            section: "section table",
        });
    }

    // Walk the table: sections must be contiguous from the header's end (so
    // the file length is fully determined and trailing garbage detectable),
    // with known, non-duplicate ids and intact checksums.
    let mut bodies: [Option<&[u8]>; 6] = [None; 6];
    let mut cursor = header_len;
    for s in 0..section_count {
        let entry = &buf[16 + 32 * s..16 + 32 * s + 32];
        let mut r = SectionReader::new(entry, "section table");
        let id = r.u32()?;
        let _reserved = r.u32()?;
        let offset = r.count()?;
        let len = r.count()?;
        let checksum = r.u64()?;
        let name = section_name(id)
            .ok_or_else(|| EngineError::BadSnapshot(format!("unknown section id {id}")))?;
        if offset != cursor {
            return Err(EngineError::BadSnapshot(format!(
                "section {name} starts at {offset}, expected {cursor} (sections must be contiguous)"
            )));
        }
        let end = offset
            .checked_add(len)
            .ok_or(EngineError::Truncated { section: name })?;
        if end > buf.len() {
            return Err(EngineError::Truncated { section: name });
        }
        let body = &buf[offset..end];
        if fnv1a(body) != checksum {
            return Err(EngineError::ChecksumMismatch { section: name });
        }
        let slot = (id - 1) as usize;
        if bodies[slot].is_some() {
            return Err(EngineError::BadSnapshot(format!(
                "duplicate {name} section"
            )));
        }
        bodies[slot] = Some(body);
        cursor = end;
    }
    if cursor != buf.len() {
        return Err(EngineError::TrailingBytes);
    }
    let body = |id: u32| -> Result<&[u8], EngineError> {
        bodies[(id - 1) as usize].ok_or_else(|| {
            // section_name is total over the six ids requested below.
            EngineError::MissingSection(section_name(id).unwrap_or("unknown"))
        })
    };

    let graph = decode_graph(body(SEC_GRAPH)?)?;
    let decomp = decode_decomp(body(SEC_DECOMP)?, &graph)?;
    let (adj, same, plus, high) = decode_ordering(body(SEC_ORDERING)?, &graph, &decomp)?;
    let forest = decode_forest(body(SEC_FOREST)?, &graph)?;
    let set_profile = decode_set_profile(body(SEC_SET_PROFILE)?, &graph, &decomp)?;
    let core_profile = decode_core_profile(body(SEC_CORE_PROFILE)?, &graph, &forest)?;
    Ok(Dataset::from_built(
        graph,
        Artifacts {
            decomp,
            adj,
            same,
            plus,
            high,
            forest,
            set_profile,
            core_profile,
        },
    ))
}

/// Reads a snapshot from any reader (buffers the stream, then parses).
pub fn load<R: Read>(mut reader: R) -> Result<Dataset, EngineError> {
    let mut buf = Vec::new();
    reader.read_to_end(&mut buf)?;
    load_bytes(&buf)
}

/// Reads a snapshot from a file path (one attempt; see
/// [`load_path_with_retry`]).
pub fn load_path<P: AsRef<Path>>(path: P) -> Result<Dataset, EngineError> {
    load_path_with_retry(path, &RetryPolicy::none())
}

/// Reads a snapshot from a file path, retrying transient I/O failures
/// under `policy`. Corruption (bad magic, checksum mismatch, truncation,
/// …) is returned immediately — re-reading the same bad bytes cannot fix
/// them.
pub fn load_path_with_retry<P: AsRef<Path>>(
    path: P,
    policy: &RetryPolicy,
) -> Result<Dataset, EngineError> {
    // Version dispatch by magic sniff: a v2 file routes to the zero-copy
    // mmap opener; everything else (v1, garbage, missing) stays on the v1
    // path, whose own validation produces the structured error.
    if sniff_magic(path.as_ref()) == Some(*crate::snapv2::MAGIC) {
        return crate::snapv2::open_with_retry(path, policy);
    }
    let bytes = with_retries(policy, || read_snapshot_bytes(path.as_ref()))?;
    load_bytes(&bytes)
}

/// Reads the first 8 bytes of `path`, if it has them. Errors map to
/// `None` — the caller's real read reports them properly.
fn sniff_magic(path: &Path) -> Option<[u8; 8]> {
    let mut f = std::fs::File::open(path).ok()?;
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic).ok()?;
    Some(magic)
}

/// The resilient load ladder as a free function: read `path` (retrying
/// transient I/O under `retry`); on corruption, quarantine the bad file
/// and rebuild the full index from the `source` graph file if one is
/// given; otherwise surface the typed error.
///
/// This is deliberately registry-free — every byte of disk I/O and the
/// whole `O(m^1.5)` rebuild happen here, so callers holding a registry
/// lock can (and must) finish this *before* acquiring it. The returned
/// dataset is fully built on the [`Rebuilt`](LoadOutcome::Rebuilt) path
/// and arrives built from any valid snapshot.
pub fn load_or_rebuild(
    path: &str,
    source: Option<&str>,
    retry: &RetryPolicy,
    policy: &ExecPolicy,
) -> Result<(Dataset, LoadOutcome), EngineError> {
    match load_path_with_retry(path, retry) {
        Ok(dataset) => Ok((dataset, LoadOutcome::Loaded)),
        Err(e) if e.is_corruption() => {
            let source = match source {
                Some(s) => s,
                None => return Err(e),
            };
            // Quarantine is best-effort: the rebuild below is the part
            // that restores service.
            if std::fs::rename(path, format!("{path}.quarantine")).is_ok() {
                bestk_obs::counter("engine.quarantines").inc();
            }
            let graph = bestk_graph::io::read_auto_path(source)?;
            let mut dataset = Dataset::from_graph(graph);
            dataset.ensure_built(policy);
            Ok((dataset, LoadOutcome::Rebuilt))
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bestk_core::Metric;
    use bestk_exec::ExecPolicy;
    use bestk_graph::generators;

    use crate::query::Query;

    fn built(g: CsrGraph) -> Dataset {
        let mut ds = Dataset::from_graph(g);
        ds.ensure_built(&ExecPolicy::Sequential);
        ds
    }

    fn snapshot_of(g: CsrGraph) -> Vec<u8> {
        let mut buf = Vec::new();
        save(&built(g), &mut buf).unwrap();
        buf
    }

    fn all_queries() -> Vec<Query> {
        let mut qs = vec![Query::Stats];
        for m in Metric::ALL {
            qs.push(Query::BestKSet { metric: m });
            qs.push(Query::BestCore { metric: m });
            qs.push(Query::ScoreProfile { metric: m });
        }
        qs
    }

    fn answers(ds: &Dataset) -> Vec<String> {
        ds.answer_batch(&all_queries(), &ExecPolicy::Sequential)
            .into_iter()
            .map(|r| r.unwrap().to_line())
            .collect()
    }

    #[test]
    fn round_trip_preserves_every_answer() {
        for (name, g) in [
            ("fig2", generators::paper_figure2()),
            ("er", generators::erdos_renyi_gnm(150, 600, 7)),
            ("cl", generators::chung_lu_power_law(200, 6.0, 2.4, 9)),
            (
                "cliques",
                generators::overlapping_cliques(120, 20, (4, 9), 3),
            ),
        ] {
            let original = built(g);
            let mut buf = Vec::new();
            save(&original, &mut buf).unwrap();
            let loaded = load_bytes(&buf).unwrap();
            assert!(loaded.is_built(), "{name}");
            assert_eq!(loaded.graph(), original.graph(), "{name}");
            assert_eq!(answers(&loaded), answers(&original), "{name}");
        }
    }

    #[test]
    fn round_trip_empty_and_tiny() {
        for g in [CsrGraph::empty(0), CsrGraph::empty(5)] {
            let original = built(g);
            let mut buf = Vec::new();
            save(&original, &mut buf).unwrap();
            let loaded = load_bytes(&buf).unwrap();
            assert_eq!(loaded.graph(), original.graph());
        }
    }

    #[test]
    fn saving_an_unbuilt_dataset_is_an_error() {
        let ds = Dataset::from_graph(generators::paper_figure2());
        let err = save(&ds, &mut Vec::new()).unwrap_err();
        assert!(matches!(err, EngineError::BadSnapshot(_)), "{err}");
    }

    #[test]
    fn rejects_bad_magic_and_version_skew() {
        let mut buf = snapshot_of(generators::paper_figure2());
        let mut wrong = buf.clone();
        wrong[0] = b'X';
        assert!(matches!(load_bytes(&wrong), Err(EngineError::BadMagic)));
        // Bump the version field.
        buf[8] = 99;
        match load_bytes(&buf) {
            Err(EngineError::VersionSkew { found, supported }) => {
                assert_eq!(found, 99);
                assert_eq!(supported, VERSION);
            }
            other => panic!("expected VersionSkew, got {other:?}"),
        }
    }

    #[test]
    fn rejects_truncation_at_every_boundary() {
        let buf = snapshot_of(generators::paper_figure2());
        // Sweep a range of cut points: prologue, table, and payload. Every
        // one must produce a structured error, never a panic, and cuts are
        // always rejected (shorter files cannot be valid).
        for cut in [0, 4, 8, 12, 15, 16, 40, 100, buf.len() - 1, buf.len() - 17] {
            let err = load_bytes(&buf[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    EngineError::Truncated { .. } | EngineError::BadSnapshot(_)
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut buf = snapshot_of(generators::paper_figure2());
        buf.push(0xAB);
        assert!(matches!(load_bytes(&buf), Err(EngineError::TrailingBytes)));
    }

    #[test]
    fn every_single_byte_flip_is_rejected_or_benign() {
        // Flip each byte of a small snapshot: the loader must never panic,
        // and payload corruption must surface as ChecksumMismatch (header
        // corruption may surface as any structured error). The reserved
        // table fields are the only bytes a flip may leave undetected.
        let buf = snapshot_of(generators::paper_figure2());
        let reserved: Vec<usize> = (0..6).map(|s| 16 + 32 * s + 4).collect();
        for at in 0..buf.len() {
            let mut corrupt = buf.clone();
            corrupt[at] ^= 0x40;
            let result = load_bytes(&corrupt);
            if reserved.iter().any(|&r| (r..r + 4).contains(&at)) {
                continue; // reserved padding: either outcome is fine
            }
            assert!(result.is_err(), "flip at byte {at} was accepted");
        }
    }

    #[test]
    fn payload_corruption_is_a_checksum_mismatch() {
        let buf = snapshot_of(generators::paper_figure2());
        let header_len = 16 + 32 * 6;
        let mut corrupt = buf.clone();
        corrupt[header_len + 3] ^= 0xFF;
        assert!(matches!(
            load_bytes(&corrupt),
            Err(EngineError::ChecksumMismatch { section: "graph" })
        ));
        let mut corrupt = buf.clone();
        *corrupt.last_mut().unwrap() ^= 0xFF;
        assert!(matches!(
            load_bytes(&corrupt),
            Err(EngineError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn consistent_but_wrong_section_is_structurally_rejected() {
        // Re-checksum a tampered section so the CRC passes; the structural
        // validators must still catch the lie. Corrupt the first coreness
        // entry in the decomposition section.
        let buf = snapshot_of(generators::paper_figure2());
        let mut corrupt = buf.clone();
        // Section table entry 1 (decomposition): offset at 16+32+8.
        let entry = 16 + 32;
        let off = u64::from_le_bytes(corrupt[entry + 8..entry + 16].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(corrupt[entry + 16..entry + 24].try_into().unwrap()) as usize;
        corrupt[off + 8] ^= 0x01; // first coreness value
        let sum = fnv1a(&corrupt[off..off + len]);
        corrupt[entry + 24..entry + 32].copy_from_slice(&sum.to_le_bytes());
        let err = load_bytes(&corrupt).unwrap_err();
        assert!(matches!(err, EngineError::BadSnapshot(_)), "{err}");
    }

    #[test]
    fn fnv1a_reference_values() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("bestk-engine-snap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bestk");
        let original = built(generators::erdos_renyi_gnm(80, 320, 5));
        save_path(&original, &path).unwrap();
        let loaded = load_path(&path).unwrap();
        assert_eq!(loaded.graph(), original.graph());
        assert_eq!(answers(&loaded), answers(&original));
        std::fs::remove_file(path).ok();
    }

    fn zero_backoff(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            attempts,
            backoff: Duration::ZERO,
        }
    }

    #[test]
    fn injected_write_crash_heals_on_retry() {
        use bestk_faults::{Fault, FaultPlan, SiteSpec};
        let dir = std::env::temp_dir().join("bestk-engine-snap-wfault");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bestk");
        let original = built(generators::paper_figure2());
        // One injected mid-write crash: the first attempt persists a partial
        // file and errors; the bounded retry overwrites it from scratch.
        let plan = FaultPlan::new(11).site(
            sites::SNAPSHOT_WRITE,
            SiteSpec::always(Fault::Truncate).with_budget(1),
        );
        bestk_faults::with_plan(&plan, || {
            save_path_with_retry(&original, &path, &zero_backoff(3)).unwrap();
        });
        let loaded = load_path(&path).unwrap();
        assert_eq!(answers(&loaded), answers(&original));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn injected_write_crash_without_retry_is_a_typed_error() {
        use bestk_faults::{Fault, FaultPlan, SiteSpec};
        let dir = std::env::temp_dir().join("bestk-engine-snap-wfault2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bestk");
        let original = built(generators::paper_figure2());
        let plan = FaultPlan::new(7).site(
            sites::SNAPSHOT_WRITE,
            SiteSpec::always(Fault::Truncate).with_budget(1),
        );
        bestk_faults::with_plan(&plan, || {
            let err = save_path(&original, &path).unwrap_err();
            assert!(matches!(err, EngineError::Io(_)), "{err}");
            // The partial file left behind is rejected as corrupt, never a
            // panic.
            let err = load_path(&path).unwrap_err();
            assert!(err.is_corruption(), "{err}");
        });
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn transient_read_errors_retry_to_success() {
        use bestk_faults::{Fault, FaultPlan, SiteSpec};
        let dir = std::env::temp_dir().join("bestk-engine-snap-rfault");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bestk");
        let original = built(generators::paper_figure2());
        save_path(&original, &path).unwrap();
        let plan = FaultPlan::new(3).site(
            sites::SNAPSHOT_READ,
            SiteSpec::mixed(vec![Fault::Interrupted, Fault::WouldBlock], 1.0).with_budget(2),
        );
        bestk_faults::with_plan(&plan, || {
            // Not enough attempts: the transient error surfaces, typed.
            let err = load_path_with_retry(&path, &zero_backoff(1)).unwrap_err();
            assert!(matches!(err, EngineError::Io(_)), "{err}");
            // Enough attempts to outlast the budget: the load succeeds.
            let loaded = load_path_with_retry(&path, &zero_backoff(4)).unwrap();
            assert_eq!(answers(&loaded), answers(&original));
        });
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn injected_read_corruption_is_rejected_not_retried() {
        use bestk_faults::{Fault, FaultPlan, SiteSpec};
        let dir = std::env::temp_dir().join("bestk-engine-snap-cfault");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bestk");
        let original = built(generators::paper_figure2());
        save_path(&original, &path).unwrap();
        // Injected truncation of the read buffer: shorter snapshots are
        // always structurally invalid, so every seed must yield a typed
        // corruption error (retries don't help and must not loop).
        for seed in 0..8 {
            let plan =
                FaultPlan::new(seed).site(sites::SNAPSHOT_READ, SiteSpec::always(Fault::Truncate));
            bestk_faults::with_plan(&plan, || {
                let err = load_path_with_retry(&path, &zero_backoff(3)).unwrap_err();
                assert!(err.is_corruption(), "seed {seed}: {err}");
            });
        }
        // Bit flips obey the chaos invariant: correct answer or typed error.
        for seed in 0..8 {
            let plan =
                FaultPlan::new(seed).site(sites::SNAPSHOT_READ, SiteSpec::always(Fault::BitFlip));
            bestk_faults::with_plan(&plan, || match load_path(&path) {
                Ok(loaded) => assert_eq!(answers(&loaded), answers(&original)),
                Err(err) => assert!(err.is_corruption(), "seed {seed}: {err}"),
            });
        }
        std::fs::remove_file(path).ok();
    }
}
