//! The engine's error type.
//!
//! Everything the snapshot store, the dataset registry, and the serving
//! loop can reject is a structured [`EngineError`] variant — corrupt
//! snapshots (truncation, checksum mismatch, version skew) are *errors*,
//! never panics, matching the workspace `no-panic` policy. Protocol-level
//! problems (a malformed request line, an unknown dataset) get their own
//! variants so the serving loop can turn them into `err` replies without
//! string-matching.

use std::fmt;

use bestk_graph::GraphError;

/// Errors produced by the snapshot store, the engine registry, and the
/// serving loop.
#[derive(Debug)]
pub enum EngineError {
    /// An underlying I/O failure (device-level, not a format violation).
    Io(std::io::Error),
    /// The embedded graph was structurally invalid.
    Graph(GraphError),
    /// The snapshot does not start with the `.bestk` magic bytes.
    BadMagic,
    /// The snapshot was written by an incompatible format version.
    VersionSkew {
        /// Version number found in the file.
        found: u32,
        /// The single version this build can read.
        supported: u32,
    },
    /// The snapshot ended before the named section was complete.
    Truncated {
        /// Which part of the layout was being read when the bytes ran out.
        section: &'static str,
    },
    /// A section's stored checksum does not match its bytes.
    ChecksumMismatch {
        /// The corrupted section.
        section: &'static str,
    },
    /// Bytes continue past the end declared by the section table.
    TrailingBytes,
    /// A required section is absent from the section table.
    MissingSection(&'static str),
    /// The snapshot parsed but violated a structural invariant.
    BadSnapshot(String),
    /// A query named a dataset the engine does not hold.
    UnknownDataset(String),
    /// A query was malformed or unanswerable (bad metric, vertex out of
    /// range, missing triangle counts).
    BadQuery(String),
    /// An edge mutation was rejected (invalid op, a mutation already in
    /// flight, or nothing staged to commit). The dataset is untouched.
    Mutation(String),
    /// A serving-loop request line did not match the protocol grammar.
    Protocol(String),
    /// A request's handler panicked; the panic was contained and converted.
    Internal(String),
    /// The server is at its in-flight capacity and shed the request.
    Overloaded {
        /// The configured in-flight limit that was hit.
        limit: usize,
    },
    /// A request line exceeded the per-line byte cap.
    TooLarge {
        /// The configured per-line cap in bytes.
        limit: usize,
    },
}

impl EngineError {
    /// A short stable snake_case tag for this error's variant, used as the
    /// `kind` label on the `serve.errors{kind=…}` metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            EngineError::Io(_) => "io",
            EngineError::Graph(_) => "graph",
            EngineError::BadMagic => "bad_magic",
            EngineError::VersionSkew { .. } => "version_skew",
            EngineError::Truncated { .. } => "truncated",
            EngineError::ChecksumMismatch { .. } => "checksum_mismatch",
            EngineError::TrailingBytes => "trailing_bytes",
            EngineError::MissingSection(_) => "missing_section",
            EngineError::BadSnapshot(_) => "bad_snapshot",
            EngineError::UnknownDataset(_) => "unknown_dataset",
            EngineError::BadQuery(_) => "bad_query",
            EngineError::Mutation(_) => "mutation",
            EngineError::Protocol(_) => "protocol",
            EngineError::Internal(_) => "internal",
            EngineError::Overloaded { .. } => "overloaded",
            EngineError::TooLarge { .. } => "too_large",
        }
    }

    /// Whether this error means the snapshot *bytes* are bad (truncation,
    /// checksum mismatch, version skew, …) rather than the I/O path being
    /// flaky — the distinction between "quarantine and rebuild" and "retry".
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            EngineError::BadMagic
                | EngineError::VersionSkew { .. }
                | EngineError::Truncated { .. }
                | EngineError::ChecksumMismatch { .. }
                | EngineError::TrailingBytes
                | EngineError::MissingSection(_)
                | EngineError::BadSnapshot(_)
                | EngineError::Graph(_)
        )
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Io(e) => write!(f, "i/o error: {e}"),
            EngineError::Graph(e) => write!(f, "graph error: {e}"),
            EngineError::BadMagic => write!(f, "bad snapshot: wrong magic bytes"),
            EngineError::VersionSkew { found, supported } => write!(
                f,
                "bad snapshot: format version {found} (this build reads version {supported})"
            ),
            EngineError::Truncated { section } => {
                write!(f, "truncated snapshot: input ended inside {section}")
            }
            EngineError::ChecksumMismatch { section } => {
                write!(f, "corrupt snapshot: checksum mismatch in {section}")
            }
            EngineError::TrailingBytes => {
                write!(f, "bad snapshot: trailing bytes after the declared payload")
            }
            EngineError::MissingSection(name) => {
                write!(f, "bad snapshot: missing {name} section")
            }
            EngineError::BadSnapshot(msg) => write!(f, "bad snapshot: {msg}"),
            EngineError::UnknownDataset(name) => write!(f, "unknown dataset {name:?}"),
            EngineError::BadQuery(msg) => write!(f, "bad query: {msg}"),
            EngineError::Mutation(msg) => write!(f, "mutation rejected: {msg}"),
            EngineError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            EngineError::Internal(msg) => write!(f, "internal error: {msg}"),
            EngineError::Overloaded { limit } => {
                write!(f, "overloaded: {limit} requests already in flight")
            }
            EngineError::TooLarge { limit } => {
                write!(f, "request too large: line exceeds {limit} bytes")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Io(e) => Some(e),
            EngineError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e)
    }
}

impl From<GraphError> for EngineError {
    fn from(e: GraphError) -> Self {
        EngineError::Graph(e)
    }
}

impl From<bestk_core::MetricError> for EngineError {
    fn from(e: bestk_core::MetricError) -> Self {
        EngineError::BadQuery(e.to_string())
    }
}

impl From<bestk_delta::DeltaError> for EngineError {
    fn from(e: bestk_delta::DeltaError) -> Self {
        match e {
            bestk_delta::DeltaError::Io(io) => EngineError::Io(io),
            bestk_delta::DeltaError::BadOp(msg) => EngineError::Mutation(msg),
            // An unreadable WAL is corruption, same family as a bad
            // snapshot: quarantine-and-continue, never retry blindly.
            bestk_delta::DeltaError::BadLog(msg) => {
                EngineError::BadSnapshot(format!("delta log: {msg}"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(EngineError::BadMagic.to_string().contains("magic"));
        let e = EngineError::VersionSkew {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("version 9"));
        assert!(e.to_string().contains("version 1"));
        let e = EngineError::Truncated { section: "graph" };
        assert!(e.to_string().contains("graph"));
        let e = EngineError::ChecksumMismatch { section: "forest" };
        assert!(e.to_string().contains("forest"));
        assert!(EngineError::TrailingBytes.to_string().contains("trailing"));
        let e = EngineError::UnknownDataset("web".into());
        assert!(e.to_string().contains("web"));
        let e = EngineError::Overloaded { limit: 4 };
        assert!(e.to_string().starts_with("overloaded"));
        let e = EngineError::TooLarge { limit: 512 };
        assert!(e.to_string().contains("512"));
        let e = EngineError::Internal("boom".into());
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn corruption_classifier_separates_retryable_io() {
        assert!(EngineError::BadMagic.is_corruption());
        assert!(EngineError::TrailingBytes.is_corruption());
        assert!(EngineError::ChecksumMismatch { section: "graph" }.is_corruption());
        assert!(EngineError::Truncated { section: "header" }.is_corruption());
        assert!(EngineError::BadSnapshot("kmax".into()).is_corruption());
        let io = EngineError::Io(std::io::Error::new(std::io::ErrorKind::Interrupted, "x"));
        assert!(!io.is_corruption());
        assert!(!EngineError::UnknownDataset("x".into()).is_corruption());
        assert!(!EngineError::Overloaded { limit: 1 }.is_corruption());
        assert!(!EngineError::Mutation("dup".into()).is_corruption());
    }

    #[test]
    fn delta_errors_map_onto_engine_variants() {
        use bestk_delta::DeltaError;
        let e = EngineError::from(DeltaError::BadOp("self-loop".into()));
        assert!(matches!(e, EngineError::Mutation(_)), "{e}");
        assert!(e.to_string().contains("self-loop"));
        let e = EngineError::from(DeltaError::BadLog("wrong magic".into()));
        assert!(e.is_corruption(), "{e}");
        let e = EngineError::from(DeltaError::Io(std::io::Error::other("disk")));
        assert!(matches!(e, EngineError::Io(_)), "{e}");
    }

    #[test]
    fn kinds_are_stable_snake_case_tags() {
        assert_eq!(EngineError::BadMagic.kind(), "bad_magic");
        assert_eq!(EngineError::Overloaded { limit: 1 }.kind(), "overloaded");
        assert_eq!(EngineError::TooLarge { limit: 8 }.kind(), "too_large");
        assert_eq!(EngineError::Protocol("x".into()).kind(), "protocol");
        assert_eq!(EngineError::Mutation("x".into()).kind(), "mutation");
        assert_eq!(EngineError::Io(std::io::Error::other("x")).kind(), "io");
        let skew = EngineError::VersionSkew {
            found: 2,
            supported: 1,
        };
        assert_eq!(skew.kind(), "version_skew");
    }

    #[test]
    fn sources_are_preserved() {
        use std::error::Error;
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = EngineError::from(inner);
        assert!(e.source().is_some());
        let e = EngineError::from(GraphError::TrailingBytes);
        assert!(e.source().is_some());
        assert!(EngineError::BadMagic.source().is_none());
    }
}
