//! The multi-dataset query engine: a registry of named datasets under a
//! configurable memory budget.
//!
//! The engine owns every loaded [`Dataset`] keyed by name. Artifacts (the
//! decomposition, ordering, forest, and profiles) are built lazily on first
//! touch and counted, so a workload's build-vs-cache-hit ratio is
//! observable. When the resident artifact bytes exceed the budget, the
//! least-recently-used dataset's artifacts are dropped — the graph itself
//! stays resident, so an evicted dataset transparently rebuilds on its next
//! touch (which counts as a fresh build, not a cache hit). The dataset
//! being served is never its own eviction victim, so a single dataset
//! larger than the budget still works; the budget then acts as a
//! high-water mark rather than a hard cap.
//!
//! Batched queries run through [`bestk_exec::ExecPolicy`], chunked with
//! [`bestk_exec::ExecPolicy::plan_even`] and merged in chunk order, so a
//! batch's answers are bit-identical at every `--threads` setting.

use std::collections::BTreeMap;

use bestk_exec::ExecPolicy;
use bestk_graph::CsrGraph;

use crate::dataset::Dataset;
use crate::error::EngineError;
use crate::query::{Answer, Query};
use crate::snapshot;

/// Monotonic counters describing the engine's lifetime workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Datasets registered (graphs inserted or snapshots loaded).
    pub loads: u64,
    /// Artifact builds (lazy first-touch builds and post-eviction rebuilds).
    pub builds: u64,
    /// Queries answered against already-built artifacts.
    pub cache_hits: u64,
    /// Artifact evictions forced by the memory budget.
    pub evictions: u64,
    /// Individual queries answered (errors included).
    pub queries: u64,
}

struct Slot {
    dataset: Dataset,
    last_used: u64,
}

/// A registry of named datasets answering typed best-k queries.
pub struct Engine {
    slots: BTreeMap<String, Slot>,
    /// Artifact-byte budget; `None` means unbounded.
    budget: Option<usize>,
    clock: u64,
    counters: Counters,
}

/// One row of [`Engine::dataset_rows`]: name, vertex count, edge count,
/// whether artifacts are resident, and approximate resident bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetRow {
    /// Registry name.
    pub name: String,
    /// Vertex count.
    pub vertices: usize,
    /// Edge count.
    pub edges: usize,
    /// Whether the artifacts are currently resident.
    pub built: bool,
    /// Approximate resident bytes (graph + artifacts).
    pub resident_bytes: usize,
}

impl Engine {
    /// Creates an engine with an optional artifact memory budget in bytes.
    pub fn new(budget_bytes: Option<usize>) -> Engine {
        Engine {
            slots: BTreeMap::new(),
            budget: budget_bytes,
            clock: 0,
            counters: Counters::default(),
        }
    }

    /// The configured budget in bytes, if any.
    pub fn budget_bytes(&self) -> Option<usize> {
        self.budget
    }

    /// Lifetime workload counters.
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total resident bytes across every dataset (graphs + artifacts).
    pub fn resident_bytes(&self) -> usize {
        self.slots
            .values()
            .map(|s| s.dataset.resident_bytes())
            .sum()
    }

    /// Registers a bare graph under `name` (artifacts build lazily on first
    /// query). Replaces any dataset previously registered under the name.
    pub fn insert_graph(&mut self, name: &str, graph: CsrGraph) {
        self.clock += 1;
        self.counters.loads += 1;
        self.slots.insert(
            name.to_owned(),
            Slot {
                dataset: Dataset::from_graph(graph),
                last_used: self.clock,
            },
        );
        self.enforce_budget(name);
    }

    /// Loads a `.bestk` snapshot from `path` and registers it under `name`.
    /// The snapshot arrives fully built, so no build is charged.
    pub fn load_snapshot(&mut self, name: &str, path: &str) -> Result<(), EngineError> {
        let dataset = snapshot::load_path(path)?;
        self.clock += 1;
        self.counters.loads += 1;
        self.slots.insert(
            name.to_owned(),
            Slot {
                dataset,
                last_used: self.clock,
            },
        );
        self.enforce_budget(name);
        Ok(())
    }

    /// Removes a dataset; returns whether it existed.
    pub fn remove(&mut self, name: &str) -> bool {
        self.slots.remove(name).is_some()
    }

    /// Answers one query against the named dataset.
    pub fn query(
        &mut self,
        name: &str,
        query: &Query,
        policy: &ExecPolicy,
    ) -> Result<Answer, EngineError> {
        let mut answers = self.query_batch(name, std::slice::from_ref(query), policy)?;
        match answers.pop() {
            Some(result) => result,
            None => Err(EngineError::BadQuery("empty query batch".into())),
        }
    }

    /// Answers a batch of queries against the named dataset, splitting the
    /// batch across `policy`'s threads. Answers come back in request order
    /// and are bit-identical at every thread count; per-query failures are
    /// individual `Err` entries, not a batch failure.
    pub fn query_batch(
        &mut self,
        name: &str,
        queries: &[Query],
        policy: &ExecPolicy,
    ) -> Result<Vec<Result<Answer, EngineError>>, EngineError> {
        self.clock += 1;
        let clock = self.clock;
        let slot = self
            .slots
            .get_mut(name)
            .ok_or_else(|| EngineError::UnknownDataset(name.to_owned()))?;
        slot.last_used = clock;
        if slot.dataset.ensure_built(policy) {
            self.counters.builds += 1;
        } else {
            self.counters.cache_hits += 1;
        }
        self.counters.queries += queries.len() as u64;
        let answers = slot.dataset.answer_batch(queries, policy);
        self.enforce_budget(name);
        Ok(answers)
    }

    /// One summary row per dataset, in name order.
    pub fn dataset_rows(&self) -> Vec<DatasetRow> {
        self.slots
            .iter()
            .map(|(name, slot)| DatasetRow {
                name: name.clone(),
                vertices: slot.dataset.graph().num_vertices(),
                edges: slot.dataset.graph().num_edges(),
                built: slot.dataset.is_built(),
                resident_bytes: slot.dataset.resident_bytes(),
            })
            .collect()
    }

    /// Drops least-recently-used artifacts until the resident total fits
    /// the budget. `protect` (the dataset just touched) is never a victim,
    /// so the active dataset cannot evict itself mid-query.
    fn enforce_budget(&mut self, protect: &str) {
        let budget = match self.budget {
            Some(b) => b,
            None => return,
        };
        while self.resident_bytes() > budget {
            let victim = self
                .slots
                .iter()
                .filter(|(name, slot)| name.as_str() != protect && slot.dataset.is_built())
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(name, _)| name.clone());
            match victim {
                Some(name) => {
                    if let Some(slot) = self.slots.get_mut(&name) {
                        slot.dataset.drop_artifacts();
                        self.counters.evictions += 1;
                    }
                }
                None => return, // nothing evictable; budget becomes a high-water mark
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bestk_core::Metric;
    use bestk_graph::generators;

    fn policy() -> ExecPolicy {
        ExecPolicy::Sequential
    }

    #[test]
    fn lazy_build_counts_builds_then_cache_hits() {
        let mut eng = Engine::new(None);
        eng.insert_graph("fig2", generators::paper_figure2());
        assert_eq!(eng.counters().loads, 1);
        assert_eq!(eng.counters().builds, 0);
        let q = Query::BestKSet {
            metric: Metric::AverageDegree,
        };
        let a = eng.query("fig2", &q, &policy()).unwrap();
        assert_eq!(a.to_line(), "bestkset\tad\tk=2\tscore=3.1666666666666665");
        assert_eq!(eng.counters().builds, 1);
        assert_eq!(eng.counters().cache_hits, 0);
        eng.query("fig2", &q, &policy()).unwrap();
        assert_eq!(eng.counters().builds, 1);
        assert_eq!(eng.counters().cache_hits, 1);
        assert_eq!(eng.counters().queries, 2);
    }

    #[test]
    fn unknown_dataset_is_an_error() {
        let mut eng = Engine::new(None);
        let err = eng.query("nope", &Query::Stats, &policy()).unwrap_err();
        assert!(matches!(err, EngineError::UnknownDataset(_)), "{err}");
    }

    #[test]
    fn batch_failures_are_per_query() {
        let mut eng = Engine::new(None);
        eng.insert_graph("fig2", generators::paper_figure2());
        let queries = [Query::Stats, Query::CoreOfVertex { vertex: 999 }];
        let answers = eng.query_batch("fig2", &queries, &policy()).unwrap();
        assert!(answers[0].is_ok());
        assert!(answers[1].is_err());
        assert_eq!(eng.counters().queries, 2);
    }

    #[test]
    fn lru_eviction_drops_oldest_artifacts_only() {
        let mut eng = Engine::new(Some(1)); // tiny budget: every build overflows
        eng.insert_graph("a", generators::erdos_renyi_gnm(60, 200, 1));
        eng.insert_graph("b", generators::erdos_renyi_gnm(60, 200, 2));
        eng.query("a", &Query::Stats, &policy()).unwrap();
        // Building `b` must evict `a`'s artifacts (LRU), never `b`'s own.
        eng.query("b", &Query::Stats, &policy()).unwrap();
        let rows = eng.dataset_rows();
        let built: Vec<(&str, bool)> = rows.iter().map(|r| (r.name.as_str(), r.built)).collect();
        assert_eq!(built, vec![("a", false), ("b", true)]);
        assert!(eng.counters().evictions >= 1);
        // Touching `a` again rebuilds (a build, not a cache hit) and evicts `b`.
        let builds_before = eng.counters().builds;
        eng.query("a", &Query::Stats, &policy()).unwrap();
        assert_eq!(eng.counters().builds, builds_before + 1);
        let rows = eng.dataset_rows();
        let built: Vec<(&str, bool)> = rows.iter().map(|r| (r.name.as_str(), r.built)).collect();
        assert_eq!(built, vec![("a", true), ("b", false)]);
    }

    #[test]
    fn unbounded_engine_never_evicts() {
        let mut eng = Engine::new(None);
        for (i, seed) in [1u64, 2, 3].iter().enumerate() {
            eng.insert_graph(
                &format!("g{i}"),
                generators::erdos_renyi_gnm(40, 120, *seed),
            );
            eng.query(&format!("g{i}"), &Query::Stats, &policy())
                .unwrap();
        }
        assert_eq!(eng.counters().evictions, 0);
        assert!(eng.dataset_rows().iter().all(|r| r.built));
    }

    #[test]
    fn snapshot_load_arrives_built() {
        let dir = std::env::temp_dir().join("bestk-engine-load-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig2.bestk");
        let mut ds = Dataset::from_graph(generators::paper_figure2());
        ds.ensure_built(&policy());
        snapshot::save_path(&ds, &path).unwrap();

        let mut eng = Engine::new(None);
        eng.load_snapshot("fig2", path.to_str().unwrap()).unwrap();
        assert!(eng.dataset_rows()[0].built);
        let a = eng
            .query(
                "fig2",
                &Query::BestCore {
                    metric: Metric::InternalDensity,
                },
                &policy(),
            )
            .unwrap();
        // Loading a pre-built snapshot then querying is a cache hit.
        assert_eq!(eng.counters().builds, 0);
        assert_eq!(eng.counters().cache_hits, 1);
        assert!(a.to_line().starts_with("bestcore\tden"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn replacing_a_dataset_keeps_the_registry_consistent() {
        let mut eng = Engine::new(None);
        eng.insert_graph("g", generators::paper_figure2());
        eng.insert_graph("g", generators::erdos_renyi_gnm(10, 20, 3));
        assert_eq!(eng.len(), 1);
        assert_eq!(eng.dataset_rows()[0].vertices, 10);
        assert!(eng.remove("g"));
        assert!(!eng.remove("g"));
        assert!(eng.is_empty());
    }
}
