//! The multi-dataset query engine: a registry of named datasets under a
//! configurable memory budget.
//!
//! The engine owns every loaded [`Dataset`] keyed by name. Artifacts (the
//! decomposition, ordering, forest, and profiles) are built lazily on first
//! touch and counted, so a workload's build-vs-cache-hit ratio is
//! observable. When the resident artifact bytes exceed the budget, the
//! least-recently-used dataset's artifacts are dropped — the graph itself
//! stays resident, so an evicted dataset transparently rebuilds on its next
//! touch (which counts as a fresh build, not a cache hit). The dataset
//! being served is never its own eviction victim, so a single dataset
//! larger than the budget still works; the budget then acts as a
//! high-water mark rather than a hard cap.
//!
//! Batched queries run through [`bestk_exec::ExecPolicy`], chunked with
//! [`bestk_exec::ExecPolicy::plan_even`] and merged in chunk order, so a
//! batch's answers are bit-identical at every `--threads` setting.

use std::collections::BTreeMap;
use std::sync::Arc;

use bestk_exec::ExecPolicy;
use bestk_faults::sites;
use bestk_graph::{CsrGraph, GraphView, SuccinctCsr};

use crate::dataset::{Artifacts, Dataset};
use crate::error::EngineError;
use crate::mutate::DeltaSlot;
use crate::query::{Answer, Query};
use crate::snapshot;

/// How [`Engine::load_snapshot_with_fallback`] obtained the dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadOutcome {
    /// The snapshot loaded cleanly (transient-I/O retries included).
    Loaded,
    /// The snapshot was corrupt: the file was quarantined and the index
    /// was rebuilt from the source graph.
    Rebuilt,
}

/// Monotonic counters describing the engine's lifetime workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Datasets registered (graphs inserted or snapshots loaded).
    pub loads: u64,
    /// Artifact builds (lazy first-touch builds and post-eviction rebuilds).
    pub builds: u64,
    /// Queries answered against already-built artifacts.
    pub cache_hits: u64,
    /// Artifact evictions forced by the memory budget.
    pub evictions: u64,
    /// Individual queries answered (errors included).
    pub queries: u64,
}

struct Slot {
    dataset: Arc<Dataset>,
    last_used: u64,
    /// Mutation state (pending ops, write-ahead log, maintained index).
    /// `Some` when idle; taken out (`None`) while a mutation is in flight
    /// so its I/O runs with no registry lock held — a second mutation
    /// arriving meanwhile gets a typed busy error instead of blocking.
    delta: Option<DeltaSlot>,
}

impl Slot {
    fn resident_bytes(&self) -> usize {
        self.dataset.resident_bytes() + self.delta.as_ref().map_or(0, DeltaSlot::heap_bytes)
    }
}

/// A registry of named datasets answering typed best-k queries.
pub struct Engine {
    slots: BTreeMap<String, Slot>,
    /// Artifact-byte budget; `None` means unbounded.
    budget: Option<usize>,
    clock: u64,
    counters: Counters,
}

/// One row of [`Engine::dataset_rows`]: name, vertex count, edge count,
/// whether artifacts are resident, and approximate resident bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetRow {
    /// Registry name.
    pub name: String,
    /// Vertex count.
    pub vertices: usize,
    /// Edge count.
    pub edges: usize,
    /// Whether the artifacts are currently resident.
    pub built: bool,
    /// Approximate resident bytes (graph + artifacts).
    pub resident_bytes: usize,
}

impl Engine {
    /// Creates an engine with an optional artifact memory budget in bytes.
    pub fn new(budget_bytes: Option<usize>) -> Engine {
        Engine {
            slots: BTreeMap::new(),
            budget: budget_bytes,
            clock: 0,
            counters: Counters::default(),
        }
    }

    /// The configured budget in bytes, if any.
    pub fn budget_bytes(&self) -> Option<usize> {
        self.budget
    }

    /// Lifetime workload counters.
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total resident bytes across every dataset (graphs + artifacts),
    /// plus each slot's mutation state — the maintained [`DeltaIndex`]
    /// (`bestk_delta`) is real heap the budget must see, or a mutating
    /// workload could dodge eviction entirely.
    pub fn resident_bytes(&self) -> usize {
        self.slots.values().map(Slot::resident_bytes).sum()
    }

    /// Registers a bare graph under `name` (artifacts build lazily on first
    /// query). Replaces any dataset previously registered under the name.
    pub fn insert_graph(&mut self, name: &str, graph: CsrGraph) {
        self.register(name, Dataset::from_graph(graph));
    }

    /// Registers a graph compressed into the succinct backend: identical
    /// answers, a fraction of the resident bytes, slower neighbor scans.
    pub fn insert_graph_succinct(&mut self, name: &str, graph: &CsrGraph) {
        let store = crate::store::GraphStore::from(SuccinctCsr::from_csr(graph));
        self.register(name, Dataset::from_store(store));
    }

    /// Loads a `.bestk` snapshot from `path` and registers it under `name`.
    /// The snapshot arrives fully built, so no build is charged.
    pub fn load_snapshot(&mut self, name: &str, path: &str) -> Result<(), EngineError> {
        let dataset = snapshot::load_path(path)?;
        self.register(name, dataset);
        Ok(())
    }

    /// Resilient snapshot load — the degradation ladder:
    ///
    /// 1. read `path`, retrying *transient* I/O failures under `retry`;
    /// 2. if the bytes are corrupt (bad magic, checksum mismatch,
    ///    truncation, …) and a `source` graph file is given, rename the
    ///    bad file to `<path>.quarantine` (preserving it for forensics),
    ///    rebuild the full index from `source`, and serve that — startup
    ///    degrades to a slow build instead of failing;
    /// 3. otherwise surface the typed error.
    pub fn load_snapshot_with_fallback(
        &mut self,
        name: &str,
        path: &str,
        source: Option<&str>,
        retry: &snapshot::RetryPolicy,
        policy: &ExecPolicy,
    ) -> Result<LoadOutcome, EngineError> {
        // All disk I/O and any rebuild live in the free function, so the
        // locked registry (`SharedEngine`) can run them outside its lock
        // and reuse only the bookkeeping step below.
        let (dataset, outcome) = snapshot::load_or_rebuild(path, source, retry, policy)?;
        self.install_loaded(name, dataset, outcome);
        Ok(outcome)
    }

    /// Registers a dataset produced by [`snapshot::load_or_rebuild`],
    /// charging a build when the snapshot had to be rebuilt from source.
    /// Pure bookkeeping — no I/O, safe to call with the registry locked.
    pub fn install_loaded(&mut self, name: &str, dataset: Dataset, outcome: LoadOutcome) {
        if outcome == LoadOutcome::Rebuilt {
            self.counters.builds += 1;
            bestk_obs::counter("engine.builds").inc();
            bestk_obs::counter("engine.rebuilds").inc();
        }
        self.register(name, dataset);
    }

    fn register(&mut self, name: &str, dataset: Dataset) {
        self.clock += 1;
        self.counters.loads += 1;
        bestk_obs::counter("engine.loads").inc();
        self.slots.insert(
            name.to_owned(),
            Slot {
                dataset: Arc::new(dataset),
                last_used: self.clock,
                delta: Some(DeltaSlot::default()),
            },
        );
        self.enforce_budget(name);
        self.record_dataset_gauge();
        self.record_slot_gauges(name);
    }

    /// Registers a loaded snapshot together with its adopted delta state
    /// (write-ahead log handle, replay bookkeeping). Pure bookkeeping.
    pub fn install_loaded_with_delta(
        &mut self,
        name: &str,
        dataset: Dataset,
        outcome: LoadOutcome,
        delta: DeltaSlot,
    ) {
        self.install_loaded(name, dataset, outcome);
        if let Some(slot) = self.slots.get_mut(name) {
            slot.delta = Some(delta);
        }
    }

    /// Takes the named slot's mutation state out, together with a handle on
    /// the committed dataset, so the caller can stage or commit with no
    /// registry lock held. While the state is out, a second mutation gets a
    /// typed busy error. Pure bookkeeping.
    pub fn delta_checkout(&mut self, name: &str) -> Result<(Arc<Dataset>, DeltaSlot), EngineError> {
        self.clock += 1;
        let clock = self.clock;
        let slot = self
            .slots
            .get_mut(name)
            .ok_or_else(|| EngineError::UnknownDataset(name.to_owned()))?;
        slot.last_used = clock;
        let delta = slot.delta.take().ok_or_else(|| {
            EngineError::Mutation(format!("another mutation on {name:?} is in flight"))
        })?;
        Ok((Arc::clone(&slot.dataset), delta))
    }

    /// Puts a checked-out mutation state back without changing the dataset
    /// (the stage path, and the commit path's error leg). A slot removed
    /// meanwhile simply drops the state. Pure bookkeeping.
    pub fn delta_restore(&mut self, name: &str, delta: DeltaSlot) {
        if let Some(slot) = self.slots.get_mut(name) {
            slot.delta = Some(delta);
        }
    }

    /// Installs the committed (mutated) dataset and returns the mutation
    /// state to the slot. Not charged as a load: the slot keeps its
    /// identity, only its graph advanced. Pure bookkeeping.
    pub fn install_mutated(&mut self, name: &str, dataset: Dataset, delta: DeltaSlot) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(slot) = self.slots.get_mut(name) {
            slot.dataset = Arc::new(dataset);
            slot.delta = Some(delta);
            slot.last_used = clock;
        }
        self.enforce_budget(name);
        self.record_slot_gauges(name);
    }

    /// Number of staged (uncommitted) ops on the named dataset. Errors when
    /// the dataset is unknown or its mutation state is checked out.
    pub fn pending_ops(&self, name: &str) -> Result<usize, EngineError> {
        let slot = self
            .slots
            .get(name)
            .ok_or_else(|| EngineError::UnknownDataset(name.to_owned()))?;
        match &slot.delta {
            Some(delta) => Ok(delta.pending.len()),
            None => Err(EngineError::Mutation(format!(
                "another mutation on {name:?} is in flight"
            ))),
        }
    }

    /// Removes a dataset; returns whether it existed.
    pub fn remove(&mut self, name: &str) -> bool {
        let existed = self.slots.remove(name).is_some();
        self.record_dataset_gauge();
        existed
    }

    fn record_dataset_gauge(&self) {
        bestk_obs::gauge("engine.datasets").set(self.slots.len() as i64);
    }

    /// Per-dataset storage gauges: the backend's resident footprint and
    /// its compression ratio versus the canonical CSR, in permille so the
    /// integer gauge keeps three decimals (1000 = parity with CSR).
    fn record_slot_gauges(&self, name: &str) {
        let Some(slot) = self.slots.get(name) else {
            return;
        };
        let ds = &slot.dataset;
        bestk_obs::gauge(&format!(
            "engine.dataset.resident_bytes{{dataset=\"{name}\"}}"
        ))
        .set(ds.resident_bytes() as i64);
        let permille = (ds.graph().compression_ratio() * 1000.0).round() as i64;
        bestk_obs::gauge(&format!(
            "engine.dataset.compression_permille{{dataset=\"{name}\"}}"
        ))
        .set(permille);
    }

    /// Answers one query against the named dataset.
    pub fn query(
        &mut self,
        name: &str,
        query: &Query,
        policy: &ExecPolicy,
    ) -> Result<Answer, EngineError> {
        let mut answers = self.query_batch(name, std::slice::from_ref(query), policy)?;
        match answers.pop() {
            Some(result) => result,
            None => Err(EngineError::BadQuery("empty query batch".into())),
        }
    }

    /// Answers a batch of queries against the named dataset, splitting the
    /// batch across `policy`'s threads. Answers come back in request order
    /// and are bit-identical at every thread count; per-query failures are
    /// individual `Err` entries, not a batch failure.
    pub fn query_batch(
        &mut self,
        name: &str,
        queries: &[Query],
        policy: &ExecPolicy,
    ) -> Result<Vec<Result<Answer, EngineError>>, EngineError> {
        let checked = self.checkout(name)?;
        let (dataset, built_now) = if checked.is_built() {
            (checked, false)
        } else {
            let artifacts = Artifacts::build(checked.graph(), policy);
            let built = Arc::new(checked.with_artifacts(artifacts));
            self.install_artifacts(name, &built);
            (built, true)
        };
        // Panic isolation: a panic anywhere in answering (including one
        // re-raised from an exec worker thread) is contained here and
        // converted to a typed error — the engine, and any serving loop
        // above it, survive.
        let answers = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dataset.answer_batch(queries, policy)
        }))
        .map_err(|payload| EngineError::Internal(panic_message(payload.as_ref())))?;
        self.finish_batch(name, built_now, queries.len());
        Ok(answers)
    }

    /// Checks out the named dataset: bumps the LRU clock and returns a
    /// shared handle. The slot keeps its own handle — the caller's copy
    /// stays valid even if the slot is evicted or replaced meanwhile.
    /// Pure bookkeeping — no I/O, no dispatch, safe under the registry
    /// lock.
    pub fn checkout(&mut self, name: &str) -> Result<Arc<Dataset>, EngineError> {
        self.clock += 1;
        let clock = self.clock;
        let slot = self
            .slots
            .get_mut(name)
            .ok_or_else(|| EngineError::UnknownDataset(name.to_owned()))?;
        slot.last_used = clock;
        Ok(Arc::clone(&slot.dataset))
    }

    /// Publishes artifacts built outside the registry (copy-on-write): the
    /// slot's dataset is replaced with the built handle unless the slot is
    /// gone or already built (a racing builder won — its artifacts are
    /// equivalent, so the late copy is simply dropped). Pure bookkeeping.
    pub fn install_artifacts(&mut self, name: &str, built: &Arc<Dataset>) {
        if let Some(slot) = self.slots.get_mut(name) {
            if !slot.dataset.is_built() {
                slot.dataset = Arc::clone(built);
            }
        }
    }

    /// Closes out one answered batch: charges the build-vs-cache-hit and
    /// query counters and runs the eviction pass. Pure bookkeeping.
    pub fn finish_batch(&mut self, name: &str, built_now: bool, queries: usize) {
        if built_now {
            self.counters.builds += 1;
            bestk_obs::counter("engine.builds").inc();
        } else {
            self.counters.cache_hits += 1;
            bestk_obs::counter("engine.cache_hits").inc();
        }
        self.counters.queries += queries as u64;
        bestk_obs::counter("engine.queries").add(queries as u64);
        self.enforce_budget(name);
        self.record_slot_gauges(name);
    }

    /// One summary row per dataset, in name order.
    pub fn dataset_rows(&self) -> Vec<DatasetRow> {
        self.slots
            .iter()
            .map(|(name, slot)| DatasetRow {
                name: name.clone(),
                vertices: slot.dataset.graph().num_vertices(),
                edges: slot.dataset.graph().num_edges(),
                built: slot.dataset.is_built(),
                resident_bytes: slot.dataset.resident_bytes(),
            })
            .collect()
    }

    /// Drops least-recently-used artifacts until the resident total fits
    /// the budget. `protect` (the dataset just touched) is never a victim,
    /// so the active dataset cannot evict itself mid-query.
    fn enforce_budget(&mut self, protect: &str) {
        // The `engine.pressure` failpoint simulates a memory-pressure spike
        // by collapsing the budget to zero for this pass: everything except
        // the protected dataset is evicted, and later touches rebuild.
        let budget = if bestk_faults::pressure(sites::ENGINE_PRESSURE) {
            0
        } else {
            match self.budget {
                Some(b) => b,
                None => return,
            }
        };
        while self.resident_bytes() > budget {
            let victim = self
                .slots
                .iter()
                .filter(|(name, slot)| name.as_str() != protect && slot.dataset.is_built())
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(name, _)| name.clone());
            match victim {
                Some(name) => {
                    if let Some(slot) = self.slots.get_mut(&name) {
                        // Copy-on-write eviction: checked-out readers keep
                        // their built handle; the slot forgets the artifacts.
                        slot.dataset = Arc::new(slot.dataset.without_artifacts());
                        self.counters.evictions += 1;
                        bestk_obs::counter("engine.evictions").inc();
                    }
                }
                None => return, // nothing evictable; budget becomes a high-water mark
            }
        }
    }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with a non-string payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bestk_core::Metric;
    use bestk_graph::generators;

    fn policy() -> ExecPolicy {
        ExecPolicy::Sequential
    }

    #[test]
    fn lazy_build_counts_builds_then_cache_hits() {
        let mut eng = Engine::new(None);
        eng.insert_graph("fig2", generators::paper_figure2());
        assert_eq!(eng.counters().loads, 1);
        assert_eq!(eng.counters().builds, 0);
        let q = Query::BestKSet {
            metric: Metric::AverageDegree,
        };
        let a = eng.query("fig2", &q, &policy()).unwrap();
        assert_eq!(a.to_line(), "bestkset\tad\tk=2\tscore=3.1666666666666665");
        assert_eq!(eng.counters().builds, 1);
        assert_eq!(eng.counters().cache_hits, 0);
        eng.query("fig2", &q, &policy()).unwrap();
        assert_eq!(eng.counters().builds, 1);
        assert_eq!(eng.counters().cache_hits, 1);
        assert_eq!(eng.counters().queries, 2);
    }

    #[test]
    fn unknown_dataset_is_an_error() {
        let mut eng = Engine::new(None);
        let err = eng.query("nope", &Query::Stats, &policy()).unwrap_err();
        assert!(matches!(err, EngineError::UnknownDataset(_)), "{err}");
    }

    #[test]
    fn batch_failures_are_per_query() {
        let mut eng = Engine::new(None);
        eng.insert_graph("fig2", generators::paper_figure2());
        let queries = [Query::Stats, Query::CoreOfVertex { vertex: 999 }];
        let answers = eng.query_batch("fig2", &queries, &policy()).unwrap();
        assert!(answers[0].is_ok());
        assert!(answers[1].is_err());
        assert_eq!(eng.counters().queries, 2);
    }

    #[test]
    fn lru_eviction_drops_oldest_artifacts_only() {
        let mut eng = Engine::new(Some(1)); // tiny budget: every build overflows
        eng.insert_graph("a", generators::erdos_renyi_gnm(60, 200, 1));
        eng.insert_graph("b", generators::erdos_renyi_gnm(60, 200, 2));
        eng.query("a", &Query::Stats, &policy()).unwrap();
        // Building `b` must evict `a`'s artifacts (LRU), never `b`'s own.
        eng.query("b", &Query::Stats, &policy()).unwrap();
        let rows = eng.dataset_rows();
        let built: Vec<(&str, bool)> = rows.iter().map(|r| (r.name.as_str(), r.built)).collect();
        assert_eq!(built, vec![("a", false), ("b", true)]);
        assert!(eng.counters().evictions >= 1);
        // Touching `a` again rebuilds (a build, not a cache hit) and evicts `b`.
        let builds_before = eng.counters().builds;
        eng.query("a", &Query::Stats, &policy()).unwrap();
        assert_eq!(eng.counters().builds, builds_before + 1);
        let rows = eng.dataset_rows();
        let built: Vec<(&str, bool)> = rows.iter().map(|r| (r.name.as_str(), r.built)).collect();
        assert_eq!(built, vec![("a", true), ("b", false)]);
    }

    #[test]
    fn unbounded_engine_never_evicts() {
        let mut eng = Engine::new(None);
        for (i, seed) in [1u64, 2, 3].iter().enumerate() {
            eng.insert_graph(
                &format!("g{i}"),
                generators::erdos_renyi_gnm(40, 120, *seed),
            );
            eng.query(&format!("g{i}"), &Query::Stats, &policy())
                .unwrap();
        }
        assert_eq!(eng.counters().evictions, 0);
        assert!(eng.dataset_rows().iter().all(|r| r.built));
    }

    #[test]
    fn snapshot_load_arrives_built() {
        let dir = std::env::temp_dir().join("bestk-engine-load-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig2.bestk");
        let mut ds = Dataset::from_graph(generators::paper_figure2());
        ds.ensure_built(&policy());
        snapshot::save_path(&ds, &path).unwrap();

        let mut eng = Engine::new(None);
        eng.load_snapshot("fig2", path.to_str().unwrap()).unwrap();
        assert!(eng.dataset_rows()[0].built);
        let a = eng
            .query(
                "fig2",
                &Query::BestCore {
                    metric: Metric::InternalDensity,
                },
                &policy(),
            )
            .unwrap();
        // Loading a pre-built snapshot then querying is a cache hit.
        assert_eq!(eng.counters().builds, 0);
        assert_eq!(eng.counters().cache_hits, 1);
        assert!(a.to_line().starts_with("bestcore\tden"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn eviction_under_pressure_with_queries_in_flight_stays_consistent() {
        // Satellite regression: a budget squeeze between queries must leave
        // the registry answering correctly — the evicted dataset rebuilds
        // on its next touch and every counter stays consistent.
        let mut eng = Engine::new(Some(1));
        eng.insert_graph("a", generators::erdos_renyi_gnm(60, 200, 1));
        eng.insert_graph("b", generators::erdos_renyi_gnm(60, 200, 2));
        let q = Query::BestKSet {
            metric: Metric::AverageDegree,
        };
        let a1 = eng.query("a", &q, &policy()).unwrap().to_line();
        // Touching `b` evicts `a` mid-workload...
        eng.query("b", &q, &policy()).unwrap();
        assert!(!eng.dataset_rows()[0].built, "a should have been evicted");
        // ...and re-querying `a` rebuilds and returns the identical answer.
        let a2 = eng.query("a", &q, &policy()).unwrap().to_line();
        assert_eq!(a1, a2);
        let c = eng.counters();
        assert_eq!(c.loads, 2);
        assert_eq!(c.builds, 3, "a, b, then a's rebuild");
        assert_eq!(c.cache_hits, 0);
        assert!(c.evictions >= 2);
        assert_eq!(c.queries, 3);
    }

    #[test]
    fn injected_pressure_evicts_and_recovers() {
        use bestk_faults::{Fault, FaultPlan, SiteSpec};
        // Unbounded budget, but the failpoint simulates a pressure spike on
        // one enforce pass: everything except the active dataset evicts,
        // later queries rebuild, answers stay identical.
        let mut eng = Engine::new(None);
        eng.insert_graph("a", generators::paper_figure2());
        eng.insert_graph("b", generators::erdos_renyi_gnm(40, 120, 3));
        let q = Query::Stats;
        let before_a = eng.query("a", &q, &policy()).unwrap().to_line();
        eng.query("b", &q, &policy()).unwrap();
        let plan = FaultPlan::new(5).site(
            sites::ENGINE_PRESSURE,
            SiteSpec::always(Fault::Pressure).with_budget(1),
        );
        bestk_faults::with_plan(&plan, || {
            // This query's budget pass hits the pressure spike: `a` (LRU,
            // unprotected) is evicted.
            eng.query("b", &q, &policy()).unwrap();
        });
        assert!(eng.counters().evictions >= 1);
        let after_a = eng.query("a", &q, &policy()).unwrap().to_line();
        assert_eq!(before_a, after_a);
    }

    #[test]
    fn worker_panic_is_contained_as_a_typed_error() {
        use bestk_faults::{Fault, FaultPlan, SiteSpec};
        let mut eng = Engine::new(None);
        eng.insert_graph("fig2", generators::paper_figure2());
        let q = Query::Stats;
        let plan = FaultPlan::new(9).site(
            sites::EXEC_WORKER,
            SiteSpec::always(Fault::Panic).with_budget(1),
        );
        bestk_faults::with_plan(&plan, || {
            let threads = ExecPolicy::with_threads(2).unwrap();
            let err = eng.query("fig2", &q, &threads).unwrap_err();
            assert!(matches!(err, EngineError::Internal(_)), "{err}");
            assert!(err.to_string().contains("injected"), "{err}");
            // The engine survives and the very next query succeeds.
            let a = eng.query("fig2", &q, &threads).unwrap();
            assert_eq!(a.to_line(), "stats\tn=12\tm=19\tkmax=3\tcores=3");
        });
    }

    #[test]
    fn corrupt_snapshot_quarantines_and_rebuilds_from_source() {
        let dir = std::env::temp_dir().join("bestk-engine-fallback-test");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("fig2.bestk");
        let source = dir.join("fig2.txt");
        let quarantine = dir.join("fig2.bestk.quarantine");
        std::fs::remove_file(&quarantine).ok();
        let g = generators::paper_figure2();
        bestk_graph::io::write_edge_list_path(&g, &source).unwrap();
        let mut ds = Dataset::from_graph(g);
        ds.ensure_built(&policy());
        snapshot::save_path(&ds, &snap).unwrap();
        // Corrupt the snapshot's payload on disk.
        let mut bytes = std::fs::read(&snap).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&snap, &bytes).unwrap();

        let mut eng = Engine::new(None);
        let snap_str = snap.to_str().unwrap();
        // Without a source the corruption surfaces as the typed error.
        let err = eng
            .load_snapshot_with_fallback(
                "fig2",
                snap_str,
                None,
                &snapshot::RetryPolicy::none(),
                &policy(),
            )
            .unwrap_err();
        assert!(err.is_corruption(), "{err}");
        // With a source the engine quarantines the bad file and rebuilds.
        let outcome = eng
            .load_snapshot_with_fallback(
                "fig2",
                snap_str,
                Some(source.to_str().unwrap()),
                &snapshot::RetryPolicy::none(),
                &policy(),
            )
            .unwrap();
        assert_eq!(outcome, LoadOutcome::Rebuilt);
        assert!(quarantine.exists(), "corrupt file must be quarantined");
        assert!(!snap.exists(), "corrupt file must be moved aside");
        let a = eng
            .query(
                "fig2",
                &Query::BestKSet {
                    metric: Metric::AverageDegree,
                },
                &policy(),
            )
            .unwrap();
        assert_eq!(a.to_line(), "bestkset\tad\tk=2\tscore=3.1666666666666665");

        // An intact snapshot through the same entry point reports Loaded.
        snapshot::save_path(&ds, &snap).unwrap();
        let outcome = eng
            .load_snapshot_with_fallback(
                "fig2b",
                snap_str,
                Some(source.to_str().unwrap()),
                &snapshot::RetryPolicy::none(),
                &policy(),
            )
            .unwrap();
        assert_eq!(outcome, LoadOutcome::Loaded);
        for f in [snap, source, quarantine] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn replacing_a_dataset_keeps_the_registry_consistent() {
        let mut eng = Engine::new(None);
        eng.insert_graph("g", generators::paper_figure2());
        eng.insert_graph("g", generators::erdos_renyi_gnm(10, 20, 3));
        assert_eq!(eng.len(), 1);
        assert_eq!(eng.dataset_rows()[0].vertices, 10);
        assert!(eng.remove("g"));
        assert!(!eng.remove("g"));
        assert!(eng.is_empty());
    }
}
