//! Backend-equivalence property suite: every storage backend — canonical
//! CSR, succinct CSR, and zero-copy mapped snapshot — must be
//! *observation-identical*. Degrees, neighbor sequences, and every best-k
//! answer are compared bit-for-bit across backends on randomized testkit
//! graphs, and the mmap path is additionally probed with truncated and
//! corrupted files (rejection) plus a corrupt-graph-body file (the proof
//! that `open` does not read the full graph section before the first
//! query).

use std::sync::Arc;

use bestk_core::Metric;
use bestk_engine::{mmap::Mmap, snapv2, Dataset, EngineError, GraphStore, Query};
use bestk_exec::ExecPolicy;
use bestk_graph::{bytecsr, testkit, ByteCsr, CsrGraph, GraphView, SuccinctCsr};

/// Renders an answer result to a stable line, errors included, so parity
/// holds even on degenerate graphs where some queries legitimately fail.
fn answer_line(ds: &Dataset, q: &Query) -> String {
    match ds.answer(q) {
        Ok(a) => format!("ok\t{}", a.to_line()),
        Err(e) => format!("err\t{e}"),
    }
}

/// The query battery: every answer shape, plus boundary vertices.
fn queries(n: usize) -> Vec<Query> {
    let mut qs = vec![
        Query::Stats,
        Query::BestKSet {
            metric: Metric::AverageDegree,
        },
        Query::BestCore {
            metric: Metric::InternalDensity,
        },
        Query::ScoreProfile {
            metric: Metric::AverageDegree,
        },
    ];
    for v in [0, n / 2, n.saturating_sub(1)] {
        if v < n {
            qs.push(Query::CoreOfVertex { vertex: v as u32 });
        }
    }
    qs
}

#[test]
fn backends_observe_identically_on_random_graphs() {
    let mut gen = testkit::Gen::new(0xBACC);
    for case in 0..24 {
        let g = gen.graph(48, 160);
        let succinct = SuccinctCsr::from_csr(&g);
        let mapped = ByteCsr::new(bytecsr::encode_view(&g)).expect("framing");
        assert_eq!(succinct.num_vertices(), g.num_vertices(), "case {case}");
        assert_eq!(succinct.num_edges(), g.num_edges(), "case {case}");
        assert_eq!(mapped.num_vertices(), g.num_vertices(), "case {case}");
        assert_eq!(mapped.num_edges(), g.num_edges(), "case {case}");
        for v in g.vertices() {
            let want = g.neighbors(v).to_vec();
            assert_eq!(GraphView::degree(&succinct, v), want.len(), "case {case}");
            assert_eq!(GraphView::degree(&mapped, v), want.len(), "case {case}");
            let s: Vec<u32> = GraphView::neighbors(&succinct, v).collect();
            let m: Vec<u32> = GraphView::neighbors(&mapped, v).collect();
            assert_eq!(s, want, "case {case} vertex {v}");
            assert_eq!(m, want, "case {case} vertex {v}");
        }
    }
}

#[test]
fn best_k_answers_are_bit_identical_across_backends() {
    let policy = ExecPolicy::with_threads(2).expect("policy");
    let mut gen = testkit::Gen::new(0xBE57);
    let mut graphs = vec![CsrGraph::empty(0), CsrGraph::empty(5)];
    for _ in 0..10 {
        graphs.push(gen.graph(40, 120));
    }
    for (case, g) in graphs.into_iter().enumerate() {
        let qs = queries(g.num_vertices());

        let mut csr = Dataset::from_graph(g.clone());
        csr.ensure_built(&policy);
        let want: Vec<String> = qs.iter().map(|q| answer_line(&csr, q)).collect();

        // Succinct backend: same artifacts pipeline, compressed scans.
        let mut succinct = Dataset::from_store(GraphStore::from(SuccinctCsr::from_csr(&g)));
        succinct.ensure_built(&policy);
        let got: Vec<String> = qs.iter().map(|q| answer_line(&succinct, q)).collect();
        assert_eq!(got, want, "case {case}: succinct diverged");

        // Mapped backend: answers come straight off the v2 snapshot bytes.
        let bytes = snapv2::to_bytes(&csr).expect("serialize");
        let mapped = snapv2::open_mmap(Arc::new(Mmap::from_vec(bytes))).expect("open");
        let got: Vec<String> = qs.iter().map(|q| answer_line(&mapped, q)).collect();
        assert_eq!(got, want, "case {case}: mapped diverged");
        assert!(mapped.is_built(), "mapped datasets never need a build");
    }
}

#[test]
fn truncated_snapshots_are_rejected_at_every_length() {
    let policy = ExecPolicy::with_threads(1).expect("policy");
    let mut ds = Dataset::from_graph(bestk_graph::generators::paper_figure2());
    ds.ensure_built(&policy);
    let bytes = snapv2::to_bytes(&ds).expect("serialize");
    // Every proper prefix must be rejected — never a panic, never a
    // silently-shorter dataset.
    for len in 0..bytes.len() {
        let err = snapv2::open_mmap(Arc::new(Mmap::from_vec(bytes[..len].to_vec())))
            .err()
            .unwrap_or_else(|| panic!("prefix of {len} bytes was accepted"));
        match err {
            EngineError::Truncated { .. }
            | EngineError::BadMagic
            | EngineError::ChecksumMismatch { .. }
            | EngineError::BadSnapshot { .. } => {}
            other => panic!("prefix of {len} bytes: unexpected error {other}"),
        }
    }
    // Trailing garbage is rejected too.
    let mut long = bytes.clone();
    long.extend_from_slice(&[0u8; 5]);
    assert!(snapv2::open_mmap(Arc::new(Mmap::from_vec(long))).is_err());
}

#[test]
fn open_defers_the_graph_checksum_until_asked() {
    let policy = ExecPolicy::with_threads(1).expect("policy");
    let mut ds = Dataset::from_graph(bestk_graph::generators::paper_figure2());
    ds.ensure_built(&policy);
    let reference: Vec<String> = queries(12).iter().map(|q| answer_line(&ds, q)).collect();
    let bytes = snapv2::to_bytes(&ds).expect("serialize");

    // The graph section is the first table entry: offset at bytes 72..80,
    // length at 80..88 (64-byte header + id/reserved of entry 0).
    let off = u64::from_le_bytes(bytes[72..80].try_into().unwrap()) as usize;
    let len = u64::from_le_bytes(bytes[80..88].try_into().unwrap()) as usize;
    assert!(len > 0 && off + len <= bytes.len());

    // Flip every 7th byte of the graph body: were `open` hashing or
    // copying the section, each flip would fail the open. It must not —
    // the profile sections alone answer best-k queries, so the open stays
    // O(header + profiles) and the graph checksum is paid only by
    // `validate_graph`. The section's own 16-byte framing header is the
    // one part `open` *does* read (its O(1) n/nnz cross-check), so the
    // sweep starts past it.
    assert!(len > 16, "graph section has a body to corrupt");
    for delta in (16..len).step_by(7) {
        let mut corrupt = bytes.clone();
        corrupt[off + delta] ^= 0x01;
        match snapv2::open_mmap(Arc::new(Mmap::from_vec(corrupt))) {
            Err(e) => panic!("open read the graph body (byte {delta}): {e}"),
            Ok(mapped) => {
                let idx = mapped.mapped_index().expect("mapped index");
                assert!(
                    idx.validate_graph().is_err(),
                    "byte {delta}: deferred validation missed the corruption"
                );
                // Profile-backed answers are untouched by graph-body damage.
                let got: Vec<String> = queries(12)
                    .iter()
                    .map(|q| answer_line(&mapped, q))
                    .collect();
                assert_eq!(got, reference, "byte {delta}");
            }
        }
    }

    // And on the pristine bytes the deferred validation passes.
    let clean = snapv2::open_mmap(Arc::new(Mmap::from_vec(bytes))).expect("open");
    clean
        .mapped_index()
        .expect("mapped index")
        .validate_graph()
        .expect("pristine graph section validates");
}
