//! Property test: a `save → load` round trip answers every query
//! byte-identically to the fresh in-memory dataset.
//!
//! Three generator families (Erdős–Rényi G(n,m), Chung–Lu power-law,
//! planted overlapping cliques) plus fully random testkit graphs are swept
//! with seeded cases; failures replay via `BESTK_PROP_SEED`.

use bestk_core::Metric;
use bestk_engine::{snapshot, Dataset, Query};
use bestk_exec::ExecPolicy;
use bestk_graph::{generators, testkit, CsrGraph, GraphView};

fn built(g: CsrGraph) -> Dataset {
    let mut ds = Dataset::from_graph(g);
    ds.ensure_built(&ExecPolicy::Sequential);
    ds
}

/// `BestKSet` + `BestCore` for all six base metrics, plus profiles, stats,
/// and a few vertex lookups.
fn query_set(n: usize) -> Vec<Query> {
    let mut qs = vec![Query::Stats];
    for m in Metric::ALL {
        qs.push(Query::BestKSet { metric: m });
        qs.push(Query::BestCore { metric: m });
        qs.push(Query::ScoreProfile { metric: m });
    }
    for v in [0usize, n / 2, n.saturating_sub(1)] {
        if v < n {
            qs.push(Query::CoreOfVertex { vertex: v as u32 });
        }
    }
    qs
}

fn answer_lines(ds: &Dataset, policy: &ExecPolicy) -> Vec<String> {
    ds.answer_batch(&query_set(ds.graph().num_vertices()), policy)
        .into_iter()
        .map(|r| match r {
            Ok(a) => a.to_line(),
            Err(e) => format!("err\t{e}"),
        })
        .collect()
}

fn assert_roundtrip(g: CsrGraph, label: &str) {
    let original = built(g);
    let mut buf = Vec::new();
    snapshot::save(&original, &mut buf).expect("save");
    let loaded = snapshot::load_bytes(&buf).expect("load");
    assert!(loaded.is_built(), "{label}: snapshot must arrive built");
    assert_eq!(loaded.graph(), original.graph(), "{label}: graph mismatch");
    let seq = ExecPolicy::Sequential;
    let fresh = answer_lines(&original, &seq);
    assert_eq!(
        answer_lines(&loaded, &seq),
        fresh,
        "{label}: answers diverge"
    );
    // And the loaded dataset stays thread-invariant.
    for threads in [2usize, 4] {
        let par = ExecPolicy::with_threads(threads).expect("policy");
        assert_eq!(
            answer_lines(&loaded, &par),
            fresh,
            "{label}: answers diverge at {threads} threads"
        );
    }
}

#[test]
fn prop_roundtrip_erdos_renyi() {
    testkit::check("engine_roundtrip_er", 12, |gen| {
        let n = gen.usize_in(2, 120);
        let m = gen.usize_in(0, 3 * n);
        let seed = gen.u64();
        assert_roundtrip(
            generators::erdos_renyi_gnm(n, m, seed),
            &format!("er n={n} m={m} seed={seed}"),
        );
    });
}

#[test]
fn prop_roundtrip_chung_lu_power_law() {
    testkit::check("engine_roundtrip_cl", 10, |gen| {
        let n = gen.usize_in(4, 150);
        let avg = 1.0 + 5.0 * gen.f64_unit();
        let gamma = 2.1 + gen.f64_unit();
        let seed = gen.u64();
        assert_roundtrip(
            generators::chung_lu_power_law(n, avg, gamma, seed),
            &format!("cl n={n} seed={seed}"),
        );
    });
}

#[test]
fn prop_roundtrip_overlapping_cliques() {
    testkit::check("engine_roundtrip_cliques", 10, |gen| {
        let n = gen.usize_in(10, 120);
        let cliques = gen.usize_in(1, 12);
        let lo = gen.usize_in(2, 5);
        let hi = lo + gen.usize_in(0, 4);
        let seed = gen.u64();
        assert_roundtrip(
            generators::overlapping_cliques(n, cliques, (lo, hi), seed),
            &format!("cliques n={n} c={cliques} seed={seed}"),
        );
    });
}

#[test]
fn prop_roundtrip_testkit_random_graphs() {
    testkit::check("engine_roundtrip_random", 12, |gen| {
        let g = gen.graph(100, 400);
        assert_roundtrip(g, "testkit random graph");
    });
}
