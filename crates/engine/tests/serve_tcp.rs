//! End-to-end test of the TCP transport: bind an ephemeral port, run the
//! serving loop, and script a real client over the socket.
//!
//! The client thread uses `std::thread` / `std::net` directly — integration
//! tests are exempt from the workspace's `no-raw-thread` / `no-raw-net`
//! lint scoping, which applies to library code.
//!
//! Both tests assert exact `serve.requests` deltas from the process-global
//! metrics registry, so they serialize on a local gate (like the chaos
//! suite does for the fault plan) instead of relying on sleeps.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use bestk_engine::{serve_on_listener, snapshot, Dataset, ServeLimits, SharedEngine};
use bestk_exec::ExecPolicy;
use bestk_graph::generators;

/// Serializes the two tests: both read counter deltas from the one
/// process-global metrics registry, and concurrent servers would cross
/// their counts.
fn gate() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn served_requests() -> u64 {
    bestk_obs::snapshot().counter("serve.requests").unwrap_or(0)
}

fn fig2_snapshot_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("bestk-engine-tcp-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(format!("fig2-{tag}.bestk"));
    let mut ds = Dataset::from_graph(generators::paper_figure2());
    ds.ensure_built(&ExecPolicy::Sequential);
    snapshot::save_path(&ds, &path).expect("save snapshot");
    path
}

#[test]
fn tcp_round_trip_with_real_client() {
    let _gate = gate();
    let snap = fig2_snapshot_path("roundtrip");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let before = served_requests();

    let client = std::thread::spawn(move || -> Vec<String> {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        let mut replies = Vec::new();
        for request in [
            format!("load fig2 {}", snap.display()),
            "query fig2 stats".to_string(),
            "query fig2 bestkset ad".to_string(),
            "query fig2 coreof 5".to_string(),
            "query fig2 bestkset zz".to_string(),
            "counters".to_string(),
            "quit".to_string(),
        ] {
            writeln!(writer, "{request}").expect("send");
            let mut line = String::new();
            reader.read_line(&mut line).expect("reply");
            replies.push(line.trim_end().to_string());
        }
        replies
    });

    let engine = SharedEngine::with_budget(None);
    serve_on_listener(
        &engine,
        &ExecPolicy::Sequential,
        &listener,
        Some(Duration::from_secs(5)),
        &ServeLimits::default(),
    )
    .expect("serve");

    let replies = client.join().expect("client thread");
    assert_eq!(replies[0], "ok\tloaded\tfig2");
    assert_eq!(replies[1], "ok\tstats\tn=12\tm=19\tkmax=3\tcores=3");
    assert_eq!(
        replies[2],
        "ok\tbestkset\tad\tk=2\tscore=3.1666666666666665"
    );
    assert_eq!(replies[3], "ok\tcoreof\t5\tcoreness=2");
    assert!(replies[4].starts_with("err\tbad query"), "{}", replies[4]);
    assert!(
        replies[5].starts_with("ok\tcounters\tloads=1\t"),
        "{}",
        replies[5]
    );
    assert_eq!(replies[6], "ok\tbye");
    // Seven scripted requests, each admitted and counted exactly once.
    assert_eq!(served_requests() - before, 7);
}

#[test]
fn tcp_server_survives_client_hangup_and_timeout() {
    let _gate = gate();
    let snap = fig2_snapshot_path("hangup");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let before = served_requests();

    let client = std::thread::spawn(move || {
        // Connection 1: send one request, then hang up without `quit`.
        {
            let stream = TcpStream::connect(addr).expect("connect 1");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut writer = &stream;
            writeln!(writer, "load fig2 {}", snap.display()).expect("send");
            let mut line = String::new();
            reader.read_line(&mut line).expect("reply");
            assert_eq!(line.trim_end(), "ok\tloaded\tfig2");
        } // dropped: EOF on the server side
          // Connection 2: go silent; the server's read timeout reaps it
          // while connection 3's reads below naturally wait it out — no
          // client-side sleep needed.
        let idle = TcpStream::connect(addr).expect("connect 2");
        // Connection 3: state survived both; shut down cleanly.
        let stream = TcpStream::connect(addr).expect("connect 3");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = &stream;
        writeln!(writer, "query fig2 stats").expect("send");
        let mut line = String::new();
        reader.read_line(&mut line).expect("reply");
        assert_eq!(line.trim_end(), "ok\tstats\tn=12\tm=19\tkmax=3\tcores=3");
        writeln!(writer, "quit").expect("send quit");
        line.clear();
        reader.read_line(&mut line).expect("bye");
        assert_eq!(line.trim_end(), "ok\tbye");
        drop(idle);
    });

    let engine = SharedEngine::with_budget(None);
    serve_on_listener(
        &engine,
        &ExecPolicy::Sequential,
        &listener,
        Some(Duration::from_millis(40)),
        &ServeLimits::default(),
    )
    .expect("serve");
    client.join().expect("client thread");
    assert_eq!(engine.counters().loads, 1);
    // load + query + quit were admitted; the silent connection contributed
    // no requests before its timeout.
    assert_eq!(served_requests() - before, 3);
}
