//! Minimal dependency-free argument parsing.
//!
//! Grammar: `bestk <command> [positional ...] [--flag] [--key value]`.
//! `--key=value` is accepted as a synonym for `--key value`.

use std::collections::BTreeMap;

use crate::CliError;

/// Parsed command line: the command word, positional arguments, and options.
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    /// The subcommand (first non-flag token).
    pub command: String,
    /// Positional arguments after the command.
    pub positional: Vec<String>,
    /// `--key value` / `--key=value` options and bare `--flag`s (value
    /// `""`).
    pub options: BTreeMap<String, String>,
}

impl ParsedArgs {
    /// Parses raw argv (without the program name).
    pub fn parse(argv: &[String]) -> Result<ParsedArgs, CliError> {
        let mut parsed = ParsedArgs::default();
        let mut it = argv.iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(stripped) = tok.strip_prefix("--") {
                if stripped.is_empty() {
                    return Err(CliError::Usage("empty option name '--'".into()));
                }
                if let Some((k, v)) = stripped.split_once('=') {
                    parsed.options.insert(k.to_string(), v.to_string());
                } else if let Some(v) = it.next_if(|next| !next.starts_with("--")) {
                    parsed.options.insert(stripped.to_string(), v.clone());
                } else {
                    parsed.options.insert(stripped.to_string(), String::new());
                }
            } else if parsed.command.is_empty() {
                parsed.command = tok.clone();
            } else {
                parsed.positional.push(tok.clone());
            }
        }
        Ok(parsed)
    }

    /// The `i`-th positional argument or a usage error naming it.
    pub fn positional(&self, i: usize, name: &str) -> Result<&str, CliError> {
        self.positional
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("missing <{name}> argument")))
    }

    /// An option as a string, if present.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Whether a bare flag (or any value) was given.
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// Rejects options the command does not understand, so a typo'd flag
    /// (`--verfy`) fails loudly instead of being silently ignored.
    pub fn reject_unknown(&self, allowed: &[&str]) -> Result<(), CliError> {
        for key in self.options.keys() {
            if !allowed.contains(&key.as_str()) {
                let accepted = if allowed.is_empty() {
                    "this command takes no options".to_string()
                } else {
                    let names: Vec<String> = allowed.iter().map(|a| format!("--{a}")).collect();
                    format!("accepted: {}", names.join(" "))
                };
                return Err(CliError::Usage(format!(
                    "unknown option --{key} ({accepted})"
                )));
            }
        }
        Ok(())
    }

    /// The execution policy from `--threads=N`.
    ///
    /// Absent → auto-detect ([`ExecPolicy::auto`]). Present → strictly a
    /// positive integer: `0`, negatives, and non-numeric values are usage
    /// errors that name the accepted form rather than being silently
    /// coerced.
    pub fn exec_policy(&self) -> Result<bestk_exec::ExecPolicy, CliError> {
        let Some(raw) = self.options.get("threads") else {
            return Ok(bestk_exec::ExecPolicy::auto());
        };
        let bad = || {
            CliError::Usage(format!(
                "--threads expects a positive integer (e.g. --threads=4), got {raw:?}"
            ))
        };
        let n: usize = raw.parse().map_err(|_| bad())?;
        bestk_exec::ExecPolicy::with_threads(n).map_err(|_| bad())
    }

    /// A parsed numeric option with a default.
    pub fn opt_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError::Usage(format!("--{key} expects a number, got {raw:?}"))),
        }
    }

    /// A required numeric option.
    pub fn require_num<T: std::str::FromStr>(&self, key: &str) -> Result<T, CliError> {
        let raw = self
            .options
            .get(key)
            .ok_or_else(|| CliError::Usage(format!("missing required --{key}")))?;
        raw.parse()
            .map_err(|_| CliError::Usage(format!("--{key} expects a number, got {raw:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(&s.iter().map(|t| t.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn command_positionals_and_options() {
        let p = parse(&["analyze", "g.txt", "--metric", "ad", "--triangles"]);
        assert_eq!(p.command, "analyze");
        assert_eq!(p.positional, vec!["g.txt"]);
        assert_eq!(p.opt("metric"), Some("ad"));
        assert!(p.flag("triangles"));
        assert!(!p.flag("nope"));
    }

    #[test]
    fn equals_syntax() {
        let p = parse(&["sck", "g.bin", "--k=5", "--h=40"]);
        assert_eq!(p.opt_num::<u32>("k", 0).unwrap(), 5);
        assert_eq!(p.require_num::<usize>("h").unwrap(), 40);
    }

    #[test]
    fn numeric_errors() {
        let p = parse(&["sck", "--k", "abc"]);
        assert!(p.opt_num::<u32>("k", 0).is_err());
        assert!(p.require_num::<u32>("missing").is_err());
        assert_eq!(p.opt_num::<u32>("missing", 7).unwrap(), 7);
    }

    #[test]
    fn flag_followed_by_flag() {
        let p = parse(&["x", "--a", "--b", "val"]);
        assert!(p.flag("a"));
        assert_eq!(p.opt("a"), Some(""));
        assert_eq!(p.opt("b"), Some("val"));
    }

    #[test]
    fn missing_positional_reports_name() {
        let p = parse(&["analyze"]);
        let err = p.positional(0, "graph").unwrap_err();
        assert!(err.to_string().contains("<graph>"));
    }

    #[test]
    fn reject_unknown_names_the_typo_and_the_accepted_set() {
        let p = parse(&["stats", "g.txt", "--verfy"]);
        let err = p.reject_unknown(&["verify"]).unwrap_err().to_string();
        assert!(err.contains("--verfy"), "{err}");
        assert!(err.contains("--verify"), "{err}");
        assert!(p.reject_unknown(&["verfy", "verify"]).is_ok());
        let none = parse(&["clique", "g.txt", "--x"]);
        let err = none.reject_unknown(&[]).unwrap_err().to_string();
        assert!(err.contains("takes no options"), "{err}");
    }

    #[test]
    fn double_dash_alone_is_an_error() {
        let argv = vec!["--".to_string()];
        assert!(ParsedArgs::parse(&argv).is_err());
    }
}
