//! Subcommand implementations.

use std::io::Write;

use bestk_apps as apps;
use bestk_core::{
    analyze as analyze_graph, analyze_basic, analyze_basic_with, analyze_with, CommunityMetric,
    Metric,
};
use bestk_engine::GraphStore;
use bestk_graph::{generators, io, stats, SuccinctCsr};

use crate::args::ParsedArgs;
use crate::{load_graph, metric_by_abbrev, CliError};

/// Which metrics a command should report on.
fn metric_selection(args: &ParsedArgs) -> Result<Vec<Metric>, CliError> {
    match args.opt("metric") {
        Some(abbrev) => Ok(vec![metric_by_abbrev(abbrev)?]),
        None if args.flag("extended") => Ok(Metric::EXTENDED.to_vec()),
        None => Ok(Metric::ALL.to_vec()),
    }
}

/// Maps a failed invariant check onto the CLI error space.
fn verify_failed(e: bestk_graph::verify::VerifyError) -> CliError {
    CliError::Failed(format!("verification FAILED: {e}"))
}

/// Resolves `--backend` into a [`GraphStore`] holding `g`. The default is
/// the canonical CSR; `succinct` re-encodes into the compressed backend,
/// exercising the same code path the serving engine uses.
fn backend_store(args: &ParsedArgs, g: bestk_graph::CsrGraph) -> Result<GraphStore, CliError> {
    match args.opt("backend").unwrap_or("csr") {
        "csr" => Ok(GraphStore::from(g)),
        "succinct" => Ok(GraphStore::from(SuccinctCsr::from_csr(&g))),
        other => Err(CliError::Usage(format!(
            "--backend expects csr or succinct, got {other:?}"
        ))),
    }
}

/// `bestk stats <graph> [--backend csr|succinct] [--verify] [--threads N]`.
pub fn stats(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&["verify", "threads", "backend"])?;
    let policy = args.exec_policy()?;
    let g = backend_store(args, load_graph(args.positional(0, "graph")?)?)?;
    let s = stats::graph_stats(&g);
    let d = bestk_core::core_decomposition_with(&g, &policy);
    if args.flag("verify") {
        let csr = g.as_csr()?;
        bestk_graph::verify::verify_graph(&csr).map_err(verify_failed)?;
        bestk_core::verify::verify_decomposition(&csr, &d).map_err(verify_failed)?;
    }
    writeln!(out, "vertices        {}", s.num_vertices)?;
    writeln!(out, "edges           {}", s.num_edges)?;
    writeln!(out, "average degree  {:.2}", s.average_degree)?;
    writeln!(out, "max degree      {}", s.max_degree)?;
    writeln!(out, "min degree      {}", s.min_degree)?;
    writeln!(out, "isolated        {}", s.isolated_vertices)?;
    writeln!(out, "kmax            {}", d.kmax())?;
    let cs = bestk_core::corestats::core_stats_with(&d, &policy);
    writeln!(out, "mean coreness   {:.2}", cs.mean_coreness)?;
    writeln!(out, "median coreness {}", cs.median_coreness)?;
    writeln!(out, "shells          {} populated", cs.populated_shells)?;
    writeln!(out, "top core size   {}", cs.top_core_size)?;
    let cc = bestk_graph::connectivity::connected_components(&g);
    writeln!(out, "components      {}", cc.count)?;
    if args.opt("backend").is_some() {
        writeln!(
            out,
            "backend         {} ({} heap bytes, {:.2}x vs csr)",
            g.backend_name(),
            g.resident_heap_bytes(),
            g.compression_ratio()
        )?;
    }
    if args.flag("verify") {
        writeln!(
            out,
            "verify          csr + core-decomposition invariants hold"
        )?;
    }
    Ok(())
}

/// `bestk analyze <graph> [--metric M] [--extended] [--verify] [--threads N]`.
pub fn analyze(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&["metric", "extended", "verify", "threads"])?;
    let policy = args.exec_policy()?;
    let g = load_graph(args.positional(0, "graph")?)?;
    let metrics = metric_selection(args)?;
    let needs_triangles = metrics.iter().any(|m| m.needs_triangles());
    let a = if needs_triangles {
        analyze_with(&g, &policy)
    } else {
        analyze_basic_with(&g, &policy)
    };
    if args.flag("verify") {
        bestk_graph::verify::verify_graph(&g).map_err(verify_failed)?;
        bestk_core::verify::verify_decomposition(&g, a.decomposition()).map_err(verify_failed)?;
        for m in &metrics {
            if let Some(best) = a.best_core_set(m) {
                bestk_core::verify::verify_best_core_set(&g, m, &best).map_err(verify_failed)?;
            }
            if let Some(best) = a.best_single_core(m) {
                bestk_core::verify::verify_best_single_core(&g, m, &best).map_err(verify_failed)?;
            }
        }
        writeln!(
            out,
            "verify: decomposition + best-k answers re-checked against baselines"
        )?;
    }
    writeln!(
        out,
        "kmax = {}, distinct cores = {}",
        a.kmax(),
        a.forest().node_count()
    )?;
    writeln!(
        out,
        "{:<24} {:>10} {:>14} {:>11} {:>14} {:>9}",
        "metric", "best-set k", "set score", "best-core k", "core score", "core |S|"
    )?;
    for m in metrics {
        let set = a.best_core_set(&m);
        let core = a.best_single_core(&m);
        let size = core
            .map(|b| a.forest().core_vertices(b.node).len().to_string())
            .unwrap_or_else(|| "-".into());
        writeln!(
            out,
            "{:<24} {:>10} {:>14} {:>11} {:>14} {:>9}",
            m.name(),
            set.map(|b| b.k.to_string()).unwrap_or_else(|| "-".into()),
            set.map(|b| format!("{:.6}", b.score))
                .unwrap_or_else(|| "-".into()),
            core.map(|b| b.k.to_string()).unwrap_or_else(|| "-".into()),
            core.map(|b| format!("{:.6}", b.score))
                .unwrap_or_else(|| "-".into()),
            size,
        )?;
    }
    Ok(())
}

/// `bestk profile <graph> --metric M [--single]`.
pub fn profile(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&["metric", "single"])?;
    let g = load_graph(args.positional(0, "graph")?)?;
    let metric = metric_by_abbrev(
        args.opt("metric")
            .ok_or_else(|| CliError::Usage("profile requires --metric".into()))?,
    )?;
    let a = if metric.needs_triangles() {
        analyze_graph(&g)
    } else {
        analyze_basic(&g)
    };
    if args.flag("single") {
        writeln!(out, "k,score")?;
        for (k, s) in a.single_core_scores(&metric) {
            writeln!(out, "{k},{s}")?;
        }
    } else {
        writeln!(out, "k,score")?;
        for (k, s) in a.core_set_scores(&metric).iter().enumerate() {
            if !s.is_nan() {
                writeln!(out, "{k},{s}")?;
            }
        }
    }
    Ok(())
}

/// `bestk densest <graph> [--method ...]`.
pub fn densest(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&["method"])?;
    let g = load_graph(args.positional(0, "graph")?)?;
    let method = args.opt("method").unwrap_or("opt-d");
    let res = match method {
        "opt-d" => {
            let a = analyze_basic(&g);
            apps::opt_d(&g, &a)
        }
        "core-app" => {
            let a = analyze_basic(&g);
            apps::core_app(&g, &a)
        }
        "peel" => apps::charikar_peeling(&g),
        "exact" => {
            if g.num_edges() > 100_000 {
                return Err(CliError::Failed(
                    "exact method is flow-based; refusing graphs over 100k edges".into(),
                ));
            }
            apps::goldberg_exact(&g)
        }
        other => return Err(CliError::Usage(format!("unknown method {other:?}"))),
    };
    writeln!(out, "method          {method}")?;
    writeln!(out, "average degree  {:.4}", res.average_degree)?;
    writeln!(out, "vertices        {}", res.vertices.len())?;
    writeln!(out, "members         {:?}", preview(&res.vertices, 20))?;
    Ok(())
}

/// `bestk clique <graph>`.
pub fn clique(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&[])?;
    let g = load_graph(args.positional(0, "graph")?)?;
    let d = bestk_core::core_decomposition(&g);
    let clique = apps::maximum_clique(&g, &d);
    writeln!(out, "maximum clique size {}", clique.len())?;
    writeln!(out, "members             {:?}", preview(&clique, 50))?;
    Ok(())
}

/// `bestk sck <graph> --k K --h H --query V`.
pub fn sck(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&["k", "h", "query"])?;
    let g = load_graph(args.positional(0, "graph")?)?;
    let k: u32 = args.require_num("k")?;
    let h: usize = args.require_num("h")?;
    let q: u32 = args.require_num("query")?;
    if (q as usize) >= g.num_vertices() {
        return Err(CliError::Usage(format!(
            "query vertex {q} out of range (n = {})",
            g.num_vertices()
        )));
    }
    let a = analyze_basic(&g);
    match apps::opt_sc(&g, &a, k, h, q) {
        None => Err(CliError::Failed(format!(
            "infeasible: no core with level >= {k} and >= {h} vertices contains {q}"
        ))),
        Some(res) => {
            writeln!(out, "source core k'  {}", res.source_core_k)?;
            writeln!(out, "result size     {} (target {h})", res.vertices.len())?;
            writeln!(out, "hit (<=5% dev)  {}", res.hits(h, 0.05))?;
            writeln!(out, "query component {}", res.query_component(&g).len())?;
            writeln!(out, "members         {:?}", preview(&res.vertices, 20))?;
            Ok(())
        }
    }
}

/// `bestk community <graph> --query V [--metric M] [--min-k K] [--max-size S]`.
pub fn community(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&["query", "metric", "min-k", "max-size"])?;
    let g = load_graph(args.positional(0, "graph")?)?;
    let q: u32 = args.require_num("query")?;
    if (q as usize) >= g.num_vertices() {
        return Err(CliError::Usage(format!(
            "query vertex {q} out of range (n = {})",
            g.num_vertices()
        )));
    }
    let a = analyze_basic(&g);
    // Always report the max-min-degree community (Sozio-Gionis).
    let mmd = apps::max_min_degree_community(&a, q);
    writeln!(
        out,
        "max-min-degree community: k = {}, |S| = {}",
        mmd.k,
        mmd.vertices.len()
    )?;
    if let Some(abbrev) = args.opt("metric") {
        let metric = metric_by_abbrev(abbrev)?;
        if metric.needs_triangles() {
            return Err(CliError::Usage(
                "triangle-based metrics are not supported for community search".into(),
            ));
        }
        let min_k: u32 = args.opt_num("min-k", 0)?;
        let max_size: Option<usize> = match args.opt("max-size") {
            None => None,
            Some(_) => Some(args.require_num("max-size")?),
        };
        match apps::best_scored_community(&a, q, &metric, min_k, max_size) {
            Some(c) => {
                writeln!(
                    out,
                    "best {} community: k = {}, score = {:.6}, |S| = {}",
                    metric.name(),
                    c.k,
                    c.score,
                    c.vertices.len()
                )?;
                writeln!(out, "members         {:?}", preview(&c.vertices, 20))?;
            }
            None => writeln!(out, "no community satisfies the constraints")?,
        }
    }
    Ok(())
}

/// `bestk truss <graph> [--metric M] [--single] [--verify] [--threads N]`.
pub fn truss(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&["metric", "single", "verify", "threads"])?;
    let policy = args.exec_policy()?;
    let g = load_graph(args.positional(0, "graph")?)?;
    let metrics = metric_selection(args)?;
    let idx = bestk_truss::EdgeIndex::build(&g);
    let t = bestk_truss::decomposition::truss_decomposition_exec(&g, &idx, &policy);
    if args.flag("verify") {
        bestk_graph::verify::verify_graph(&g).map_err(verify_failed)?;
        bestk_truss::verify::verify_truss_decomposition(&g, &idx, &t).map_err(verify_failed)?;
        writeln!(out, "verify: truss decomposition invariants hold")?;
    }
    writeln!(out, "tmax = {}", t.tmax())?;
    if args.flag("single") {
        writeln!(
            out,
            "{:<24} {:>9} {:>14} {:>8}",
            "metric", "best k", "score", "|S|"
        )?;
        for m in metrics {
            match bestk_truss::best_single_k_truss(&g, &idx, &t, &m) {
                Some(best) => writeln!(
                    out,
                    "{:<24} {:>9} {:>14.6} {:>8}",
                    m.name(),
                    best.truss.k,
                    best.score,
                    best.truss.vertices.len()
                )?,
                None => writeln!(out, "{:<24} {:>9} {:>14} {:>8}", m.name(), "-", "-", "-")?,
            }
        }
        return Ok(());
    }
    let profile = bestk_truss::truss_set_profile(&g, &idx, &t);
    writeln!(out, "{:<24} {:>9} {:>14}", "metric", "best k", "score")?;
    for m in metrics {
        match profile.best(&m) {
            Some(best) => writeln!(out, "{:<24} {:>9} {:>14.6}", m.name(), best.k, best.score)?,
            None => writeln!(out, "{:<24} {:>9} {:>14}", m.name(), "-", "-")?,
        }
    }
    Ok(())
}

/// `bestk generate <family> --n N [...] --seed S --out FILE`.
pub fn generate(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&[
        "seed",
        "n",
        "m",
        "p",
        "avg-deg",
        "gamma",
        "scale",
        "edge-factor",
        "attach",
        "k",
        "beta",
        "cliques",
        "min-size",
        "max-size",
        "out",
    ])?;
    let family = args.positional(0, "family")?;
    let seed: u64 = args.opt_num("seed", 42)?;
    let g = match family {
        "er-gnm" => {
            let n: usize = args.require_num("n")?;
            let m: usize = args.require_num("m")?;
            generators::erdos_renyi_gnm(n, m, seed)
        }
        "er-gnp" => {
            let n: usize = args.require_num("n")?;
            let p: f64 = args.require_num("p")?;
            generators::erdos_renyi_gnp(n, p, seed)
        }
        "chung-lu" => {
            let n: usize = args.require_num("n")?;
            let avg: f64 = args.opt_num("avg-deg", 10.0)?;
            let gamma: f64 = args.opt_num("gamma", 2.5)?;
            generators::chung_lu_power_law(n, avg, gamma, seed)
        }
        "rmat" => {
            let scale: u32 = args.require_num("scale")?;
            let ef: usize = args.opt_num("edge-factor", 16)?;
            generators::rmat(scale, ef, 0.57, 0.19, 0.19, seed)
        }
        "ba" => {
            let n: usize = args.require_num("n")?;
            let attach: usize = args.opt_num("attach", 3)?;
            generators::barabasi_albert(n, attach, seed)
        }
        "ws" => {
            let n: usize = args.require_num("n")?;
            let k: usize = args.opt_num("k", 6)?;
            let beta: f64 = args.opt_num("beta", 0.1)?;
            generators::watts_strogatz(n, k, beta, seed)
        }
        "cliques" => {
            let n: usize = args.require_num("n")?;
            let cliques: usize = args.require_num("cliques")?;
            let lo: usize = args.opt_num("min-size", 3)?;
            let hi: usize = args.opt_num("max-size", 10)?;
            generators::overlapping_cliques(n, cliques, (lo, hi), seed)
        }
        other => return Err(CliError::Usage(format!("unknown family {other:?}"))),
    };
    let path = args
        .opt("out")
        .ok_or_else(|| CliError::Usage("generate requires --out FILE".into()))?;
    write_by_extension(&g, path)?;
    writeln!(
        out,
        "wrote {}: n={}, m={}",
        path,
        g.num_vertices(),
        g.num_edges()
    )?;
    Ok(())
}

/// `bestk convert <in> <out>`.
pub fn convert(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&[])?;
    let src = args.positional(0, "in")?;
    let dst = args.positional(1, "out")?;
    let g = load_graph(src)?;
    write_by_extension(&g, dst)?;
    writeln!(
        out,
        "wrote {dst}: n={}, m={}",
        g.num_vertices(),
        g.num_edges()
    )?;
    Ok(())
}

/// Parses `--budget-mb` into a byte budget: a strictly positive integer
/// (0, negatives, and non-numeric values are usage errors).
fn budget_bytes(args: &ParsedArgs) -> Result<Option<usize>, CliError> {
    let Some(raw) = args.opt("budget-mb") else {
        return Ok(None);
    };
    let bad = || {
        CliError::Usage(format!(
            "--budget-mb expects a positive integer (megabytes), got {raw:?}"
        ))
    };
    let mb: usize = raw.parse().map_err(|_| bad())?;
    if mb == 0 {
        return Err(bad());
    }
    Ok(Some(mb.saturating_mul(1024 * 1024)))
}

/// Parses `--timeout-ms` into a read timeout: strictly positive.
fn timeout_opt(args: &ParsedArgs) -> Result<Option<std::time::Duration>, CliError> {
    let Some(raw) = args.opt("timeout-ms") else {
        return Ok(None);
    };
    let bad = || {
        CliError::Usage(format!(
            "--timeout-ms expects a positive integer (milliseconds), got {raw:?}"
        ))
    };
    let ms: u64 = raw.parse().map_err(|_| bad())?;
    if ms == 0 {
        return Err(bad());
    }
    Ok(Some(std::time::Duration::from_millis(ms)))
}

/// `bestk snapshot <graph> <out.bestk> [--format v1|v2] [--threads N]`:
/// build the full index and persist it in the `.bestk` format. `--format
/// v2` writes the mmap-friendly layout that the engine opens zero-copy;
/// both formats load transparently (`bestk query`, the serving loop, and
/// `load_or_rebuild` sniff the magic).
pub fn snapshot(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&["threads", "format"])?;
    let policy = args.exec_policy()?;
    let src = args.positional(0, "graph")?;
    let dst = args.positional(1, "out.bestk")?;
    let g = load_graph(src)?;
    let mut ds = bestk_engine::Dataset::from_graph(g);
    ds.ensure_built(&policy);
    match args.opt("format").unwrap_or("v1") {
        "v1" => bestk_engine::snapshot::save_path(&ds, dst)?,
        "v2" => bestk_engine::save_snapshot_v2_path(&ds, dst)?,
        other => {
            return Err(CliError::Usage(format!(
                "--format expects v1 or v2, got {other:?}"
            )))
        }
    }
    match ds.answer(&bestk_engine::Query::Stats) {
        Ok(stats) => writeln!(out, "wrote {dst}\t{}", stats.to_line())?,
        Err(e) => return Err(CliError::Engine(e)),
    }
    Ok(())
}

/// `bestk query <snapshot> <query>... [--threads N] [--budget-mb N]`: load
/// a snapshot and answer each query (one shell argument per query, e.g.
/// `"bestkset ad"`), printing one `ok`/`err` reply line per query — the
/// same lines the serving loop would emit.
pub fn query(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&["threads", "budget-mb"])?;
    let policy = args.exec_policy()?;
    let budget = budget_bytes(args)?;
    let snap = args.positional(0, "snapshot")?;
    if args.positional.len() < 2 {
        return Err(CliError::Usage(
            "query requires at least one <query> argument (e.g. \"bestkset ad\")".into(),
        ));
    }
    let mut engine = bestk_engine::Engine::new(budget);
    engine.load_snapshot("snapshot", snap)?;
    let parsed: Vec<Result<bestk_engine::Query, bestk_engine::EngineError>> = args.positional[1..]
        .iter()
        .map(|text| bestk_engine::Query::parse(text))
        .collect();
    let valid: Vec<bestk_engine::Query> = parsed
        .iter()
        .filter_map(|r| r.as_ref().ok().copied())
        .collect();
    let mut answers = engine.query_batch("snapshot", &valid, &policy)?.into_iter();
    for result in parsed {
        match result {
            Ok(_) => match answers.next() {
                Some(Ok(answer)) => writeln!(out, "ok\t{}", answer.to_line())?,
                Some(Err(e)) => writeln!(out, "err\t{e}")?,
                None => {}
            },
            Err(e) => writeln!(out, "err\t{e}")?,
        }
    }
    Ok(())
}

/// Parses one explicit mutation token: `add:u:v` or `del:u:v`.
fn parse_edge_op(token: &str) -> Result<generators::EdgeOp, CliError> {
    let bad = || {
        CliError::Usage(format!(
            "bad op {token:?} (expected add:<u>:<v> or del:<u>:<v>)"
        ))
    };
    let mut parts = token.split(':');
    let kind = parts.next().ok_or_else(bad)?;
    let u: u32 = parts.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
    let v: u32 = parts.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
    if parts.next().is_some() {
        return Err(bad());
    }
    match kind {
        "add" => Ok(generators::EdgeOp::Insert(u, v)),
        "del" => Ok(generators::EdgeOp::Delete(u, v)),
        _ => Err(bad()),
    }
}

/// `bestk mutate <snapshot> [add:u:v|del:u:v ...] [--stream F --count N
/// --seed S] [--commit-every N] [--threads N]`: stage edge mutations
/// against a snapshot through the serving engine and commit them. Every
/// committed op lands in the write-ahead log beside the snapshot
/// (`<snapshot>.wal`), so the mutations survive restarts and are replayed
/// by any later `load`/`query`/`serve` against the same path.
pub fn mutate(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&["stream", "count", "seed", "commit-every", "threads"])?;
    let policy = args.exec_policy()?;
    let snap = args.positional(0, "snapshot")?;
    let commit_every: usize = args.opt_num("commit-every", 0)?;
    let engine = bestk_engine::SharedEngine::with_budget(None);
    engine.load_snapshot_with_fallback(
        "g",
        snap,
        None,
        &bestk_engine::RetryPolicy::default(),
        &policy,
    )?;
    let ops: Vec<generators::EdgeOp> = match args.opt("stream") {
        None => {
            if args.positional.len() < 2 {
                return Err(CliError::Usage(
                    "mutate requires ops (add:<u>:<v> / del:<u>:<v>) or --stream".into(),
                ));
            }
            args.positional[1..]
                .iter()
                .map(|t| parse_edge_op(t))
                .collect::<Result<_, _>>()?
        }
        Some(family) => {
            if args.positional.len() > 1 {
                return Err(CliError::Usage(
                    "explicit ops and --stream are mutually exclusive".into(),
                ));
            }
            let count: usize = args.opt_num("count", 100)?;
            let seed: u64 = args.opt_num("seed", 1)?;
            let dataset = engine.guard().checkout("g")?;
            let csr = dataset.graph().as_csr()?;
            match family {
                "mixed" => generators::edge_stream_mixed(&csr, count, seed),
                "delete-heavy" => generators::edge_stream_delete_heavy(&csr, count, seed),
                "focused" => {
                    // Hammer the max-k shell: the adversarial pattern where
                    // every op dirties the deepest sweep levels.
                    let d = bestk_core::core_decomposition_with(&*csr, &policy);
                    let focus = d.shell(d.kmax()).to_vec();
                    generators::edge_stream_focused(&csr, &focus, count, seed)
                }
                other => {
                    return Err(CliError::Usage(format!(
                        "--stream expects mixed, delete-heavy, or focused, got {other:?}"
                    )))
                }
            }
        }
    };
    let total = ops.len();
    let mut staged = 0usize;
    for op in ops {
        engine.stage_edge("g", op)?;
        staged += 1;
        if commit_every > 0 && staged.is_multiple_of(commit_every) {
            write_commit_line(&engine, &policy, out)?;
        }
    }
    if engine.pending_ops("g")? > 0 {
        write_commit_line(&engine, &policy, out)?;
    }
    writeln!(out, "mutated\t{snap}\tops={total}\twal={snap}.wal")?;
    Ok(())
}

/// Commits the staged ops and prints the one-line summary.
fn write_commit_line(
    engine: &bestk_engine::SharedEngine,
    policy: &bestk_exec::ExecPolicy,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let s = engine.commit_edges("g", policy)?;
    let best = match &s.best {
        Some(b) => format!("bestk={}\tscore={}", b.k, b.score),
        None => "bestk=-\tscore=-".into(),
    };
    writeln!(
        out,
        "committed\tops={}\tn={}\tm={}\tkmax={}\t{}{}",
        s.ops,
        s.vertices,
        s.edges,
        s.kmax,
        best,
        if s.compacted { "\tcompacted" } else { "" }
    )?;
    Ok(())
}

/// Parses `--max-inflight` / `--max-line-bytes` into serving limits,
/// starting from [`bestk_engine::ServeLimits::default`]. `--max-inflight 0`
/// is allowed (a drain configuration that sheds every request);
/// `--max-line-bytes` must be positive.
fn serve_limits(args: &ParsedArgs) -> Result<bestk_engine::ServeLimits, CliError> {
    let mut limits = bestk_engine::ServeLimits::default();
    if let Some(raw) = args.opt("max-inflight") {
        limits.max_inflight = raw.parse().map_err(|_| {
            CliError::Usage(format!(
                "--max-inflight expects a non-negative integer, got {raw:?}"
            ))
        })?;
    }
    if let Some(raw) = args.opt("max-line-bytes") {
        let bad = || {
            CliError::Usage(format!(
                "--max-line-bytes expects a positive integer, got {raw:?}"
            ))
        };
        let n: usize = raw.parse().map_err(|_| bad())?;
        if n == 0 {
            return Err(bad());
        }
        limits.max_line_bytes = n;
    }
    Ok(limits)
}

/// `bestk serve [--port P | --stdin] [--budget-mb N] [--threads N]
/// [--timeout-ms T] [--max-inflight N] [--max-line-bytes N]
/// [--metrics-dump] [--record FILE]`: run the line-oriented serving loop
/// over stdin/stdout (the default; `--stdin` names it explicitly), or over
/// a loopback TCP listener when `--port` is given. With `--metrics-dump`
/// the metrics exposition is printed after the loop exits. With `--record`
/// the session (requests, replies, clock readings, and the `BESTK_FAULTS`
/// spec) is captured to a checksummed `.bestkrec` file for `bestk replay`;
/// recording is stdio-only because the TCP accept loop owns its streams.
pub fn serve(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&[
        "port",
        "stdin",
        "budget-mb",
        "threads",
        "timeout-ms",
        "max-inflight",
        "max-line-bytes",
        "metrics-dump",
        "record",
    ])?;
    if !args.positional.is_empty() {
        return Err(CliError::Usage(
            "serve takes no positional arguments (datasets are loaded via the protocol)".into(),
        ));
    }
    let policy = args.exec_policy()?;
    let budget = budget_bytes(args)?;
    let timeout = timeout_opt(args)?;
    let limits = serve_limits(args)?;
    let port: Option<u16> = match args.opt("port") {
        None => None,
        Some(raw) => {
            let bad = || {
                CliError::Usage(format!(
                    "--port expects a positive integer below 65536, got {raw:?}"
                ))
            };
            let p: u16 = raw.parse().map_err(|_| bad())?;
            if p == 0 {
                return Err(bad());
            }
            Some(p)
        }
    };
    if args.flag("stdin") && port.is_some() {
        return Err(CliError::Usage(
            "--stdin and --port are mutually exclusive".into(),
        ));
    }
    let record = args.opt("record");
    if record.is_some() && port.is_some() {
        return Err(CliError::Usage(
            "--record requires the stdio transport (drop --port)".into(),
        ));
    }
    let engine = bestk_engine::SharedEngine::with_budget(budget);
    match port {
        None => {
            let stdin = std::io::stdin();
            match record {
                None => {
                    bestk_engine::serve_lines_with(
                        &engine,
                        &policy,
                        stdin.lock(),
                        &mut *out,
                        &limits,
                    )?;
                }
                Some(path) => {
                    let spec = std::env::var("BESTK_FAULTS").unwrap_or_default();
                    let mut recorder = bestk_engine::ServeRecorder::new(&limits, &spec);
                    bestk_engine::serve_lines_recorded(
                        &engine,
                        &policy,
                        stdin.lock(),
                        &mut *out,
                        &limits,
                        &mut recorder,
                    )?;
                    recorder.save(path)?;
                    writeln!(out, "recorded\t{path}")?;
                }
            }
        }
        Some(port) => {
            bestk_engine::serve_tcp(&engine, &policy, port, timeout, &limits, |addr| {
                // Best-effort bind notice; the accept loop is the product.
                let _ = writeln!(out, "serving on {addr}");
            })?;
        }
    }
    if args.flag("metrics-dump") {
        write!(out, "{}", bestk_obs::snapshot().render())?;
    }
    Ok(())
}

/// `bestk replay <recording> [--threads N]`: re-drive a `.bestkrec` session
/// recorded by `serve --record` through a fresh engine and diff every reply
/// byte-for-byte against what was recorded. A divergence is a `Failed`
/// error naming the first differing request, so CI can gate on it.
pub fn replay(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&["threads"])?;
    let policy = args.exec_policy()?;
    let path = args.positional(0, "recording")?;
    let engine = bestk_engine::SharedEngine::with_budget(None);
    let report = bestk_engine::replay_recording_path(path, &engine, &policy)?;
    writeln!(
        out,
        "replay\t{path}\trequests={}\tmatched={}\tmismatches={}",
        report.requests,
        report.matched,
        report.mismatches.len()
    )?;
    for m in &report.mismatches {
        writeln!(out, "mismatch\t#{}\t{}", m.index, m.line)?;
        writeln!(out, "  recorded: {}", m.recorded)?;
        writeln!(out, "  replayed: {}", m.replayed)?;
    }
    if !report.clean() {
        return Err(CliError::Failed(format!(
            "replay diverged on {} of {} requests",
            report.mismatches.len(),
            report.requests
        )));
    }
    Ok(())
}

/// `bestk fuzz <surface>|all [--seeds N] [--budget-bytes B]
/// [--seed-start S]`: run the structured fuzzers from `bestk-fuzz` over a
/// deterministic seed range. Each input must parse to a valid result or a
/// typed error — a panic or a budget violation fails the command, and the
/// per-surface tallies are printed either way. Surfaces: `graph-io`,
/// `snapshot`, `wal`, `serve`.
pub fn fuzz(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&["seeds", "budget-bytes", "seed-start"])?;
    let name = args.positional(0, "surface")?;
    let surfaces: Vec<bestk_fuzz::Surface> = if name == "all" {
        bestk_fuzz::ALL_SURFACES.to_vec()
    } else {
        vec![bestk_fuzz::Surface::parse(name).ok_or_else(|| {
            CliError::Usage(format!(
                "unknown surface {name:?} (expected graph-io, snapshot, wal, serve, or all)"
            ))
        })?]
    };
    let seeds: u64 = args.opt_num("seeds", 256)?;
    if seeds == 0 {
        return Err(CliError::Usage(
            "--seeds must be at least 1 (a zero-seed sweep proves nothing)".into(),
        ));
    }
    let budget: usize = args.opt_num("budget-bytes", bestk_fuzz::DEFAULT_BUDGET_BYTES)?;
    if budget == 0 {
        return Err(CliError::Usage("--budget-bytes must be at least 1".into()));
    }
    let seed_start: u64 = args.opt_num("seed-start", 0)?;
    let mut dirty = Vec::new();
    for surface in surfaces {
        let report = bestk_fuzz::run_surface(surface, seed_start, seeds, budget);
        writeln!(
            out,
            "fuzz\t{}\tinputs={}\tvalid={}\ttyped_errors={}\tpanics={}\tviolations={}",
            surface.name(),
            report.inputs,
            report.valid,
            report.typed_errors,
            report.panics,
            report.violations
        )?;
        if !report.clean() {
            dirty.push(surface.name());
        }
    }
    if !dirty.is_empty() {
        return Err(CliError::Failed(format!(
            "fuzzing found failures on: {}",
            dirty.join(", ")
        )));
    }
    Ok(())
}

/// `bestk metrics <graph> [--threads N]`: run the full best-k pipeline
/// (decomposition peel, metric sweeps, best-k selection) once on `graph`
/// and print the metrics exposition — the quickest way to see the phase
/// timing counters the paper's cost model is stated in.
pub fn metrics(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&["threads"])?;
    let policy = args.exec_policy()?;
    let g = load_graph(args.positional(0, "graph")?)?;
    let mut dataset = bestk_engine::Dataset::from_graph(g);
    dataset.ensure_built(&policy);
    // Exercise the selection phase for both answer shapes.
    for query in [
        bestk_engine::Query::BestKSet {
            metric: Metric::AverageDegree,
        },
        bestk_engine::Query::BestCore {
            metric: Metric::AverageDegree,
        },
    ] {
        dataset.answer(&query).map_err(CliError::Engine)?;
    }
    write!(out, "{}", bestk_obs::snapshot().render())?;
    Ok(())
}

fn write_by_extension(g: &bestk_graph::CsrGraph, path: &str) -> Result<(), CliError> {
    if path.ends_with(".bin") {
        io::write_binary_path(g, path)?;
    } else if path.ends_with(".metis") || path.ends_with(".graph") {
        io::write_metis_path(g, path)?;
    } else if path.ends_with(".dot") {
        io::write_dot_path(g, path, None)?;
    } else {
        io::write_edge_list_path(g, path)?;
    }
    Ok(())
}

fn preview(v: &[u32], limit: usize) -> Vec<u32> {
    v.iter().copied().take(limit).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bestk_graph::GraphBuilder;

    fn run(args: &[&str]) -> Result<String, CliError> {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        crate::run(&argv, &mut buf)?;
        Ok(String::from_utf8(buf).unwrap())
    }

    fn fixture_path(name: &str) -> String {
        let dir = std::env::temp_dir().join(format!("bestk-cli-cmd-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_str().unwrap().to_string()
    }

    fn write_figure2() -> String {
        let path = fixture_path("fig2.txt");
        let g = bestk_graph::generators::paper_figure2();
        io::write_edge_list_path(&g, &path).unwrap();
        path
    }

    #[test]
    fn stats_reports_kmax() {
        let path = write_figure2();
        let out = run(&["stats", &path]).unwrap();
        assert!(out.contains("vertices        12"));
        assert!(out.contains("edges           19"));
        assert!(out.contains("kmax            3"));
        assert!(out.contains("components      1"));
    }

    #[test]
    fn analyze_reports_all_metrics() {
        let path = write_figure2();
        let out = run(&["analyze", &path]).unwrap();
        assert!(out.contains("average degree"));
        assert!(out.contains("clustering coefficient"));
        // Example 4: best set k for average degree is 2.
        let ad_line = out
            .lines()
            .find(|l| l.starts_with("average degree"))
            .unwrap();
        assert!(ad_line.split_whitespace().any(|t| t == "2"), "{ad_line}");
    }

    #[test]
    fn analyze_single_metric_and_extended() {
        let path = write_figure2();
        let out = run(&["analyze", &path, "--metric", "cc"]).unwrap();
        assert!(out.contains("clustering coefficient"));
        assert!(!out.contains("modularity"));
        let out = run(&["analyze", &path, "--extended"]).unwrap();
        assert!(out.contains("separability"));
    }

    #[test]
    fn profile_emits_csv() {
        let path = write_figure2();
        let out = run(&["profile", &path, "--metric", "ad"]).unwrap();
        let mut lines = out.lines();
        assert_eq!(lines.next(), Some("k,score"));
        assert!(out.lines().count() >= 4);
        let out = run(&["profile", &path, "--metric", "ad", "--single"]).unwrap();
        assert!(out.starts_with("k,score"));
        assert!(run(&["profile", &path]).is_err(), "missing --metric");
    }

    #[test]
    fn densest_methods_agree_on_figure2() {
        let path = write_figure2();
        for method in ["opt-d", "core-app", "peel", "exact"] {
            let out = run(&["densest", &path, "--method", method]).unwrap();
            assert!(out.contains("average degree"), "{method}");
        }
        assert!(run(&["densest", &path, "--method", "bogus"]).is_err());
    }

    #[test]
    fn clique_on_figure2_is_k4() {
        let path = write_figure2();
        let out = run(&["clique", &path]).unwrap();
        assert!(out.contains("maximum clique size 4"));
    }

    #[test]
    fn sck_roundtrip_and_errors() {
        let path = fixture_path("k20.txt");
        let mut b = GraphBuilder::new();
        for u in 0..20u32 {
            for v in (u + 1)..20 {
                b.add_edge(u, v);
            }
        }
        io::write_edge_list_path(&b.build(), &path).unwrap();
        let out = run(&["sck", &path, "--k", "5", "--h", "10", "--query", "0"]).unwrap();
        assert!(out.contains("hit (<=5% dev)  true"), "{out}");
        assert!(run(&["sck", &path, "--k", "5", "--h", "10", "--query", "99"]).is_err());
        assert!(run(&["sck", &path, "--k", "25", "--h", "10", "--query", "0"]).is_err());
        assert!(
            run(&["sck", &path, "--h", "10", "--query", "0"]).is_err(),
            "missing --k"
        );
    }

    #[test]
    fn mutate_commits_explicit_ops_durably() {
        let graph = write_figure2();
        let snap = fixture_path("mutate.bestk");
        for stale in ["mutate.bestk.wal", "mutate.bestk.wal.quarantine"] {
            let _ = std::fs::remove_file(fixture_path(stale));
        }
        run(&["snapshot", &graph, &snap]).unwrap();
        let out = run(&["mutate", &snap, "add:0:11", "del:0:1"]).unwrap();
        assert!(out.contains("committed\tops=2\tn=12\tm=19\tkmax="), "{out}");
        assert!(out.contains(&format!("wal={snap}.wal")), "{out}");
        // The WAL sits beside the snapshot and replays on the next load:
        // deleting the edge added above only works if it was replayed.
        let out = run(&["mutate", &snap, "del:0:11"]).unwrap();
        assert!(out.contains("committed\tops=1\tn=12\tm=18\t"), "{out}");
        // Invalid ops are typed rejections, not panics.
        assert!(run(&["mutate", &snap, "add:0:0"]).is_err());
        assert!(run(&["mutate", &snap, "bogus"]).is_err());
        assert!(run(&["mutate", &snap]).is_err(), "no ops given");
    }

    #[test]
    fn mutate_streams_are_deterministic() {
        let graph = write_figure2();
        let snap = fixture_path("mutate-stream.bestk");
        let _ = std::fs::remove_file(fixture_path("mutate-stream.bestk.wal"));
        run(&["snapshot", &graph, &snap]).unwrap();
        let args = [
            "mutate",
            &snap,
            "--stream",
            "mixed",
            "--count",
            "20",
            "--seed",
            "7",
            "--commit-every",
            "8",
        ];
        let out = run(&args).unwrap();
        assert_eq!(
            out.lines().filter(|l| l.starts_with("committed\t")).count(),
            3,
            "{out}"
        );
        assert!(out.contains("ops=20"), "{out}");
        assert!(run(&["mutate", &snap, "--stream", "bogus"]).is_err());
        assert!(
            run(&["mutate", &snap, "add:0:11", "--stream", "mixed"]).is_err(),
            "ops and --stream are exclusive"
        );
    }

    #[test]
    fn community_command_on_figure2() {
        let path = write_figure2();
        // v1 sits in a K4 — the max-min-degree community is that 3-core.
        let out = run(&["community", &path, "--query", "0"]).unwrap();
        assert!(out.contains("k = 3, |S| = 4"), "{out}");
        let out = run(&["community", &path, "--query", "0", "--metric", "den"]).unwrap();
        assert!(out.contains("best internal density community"), "{out}");
        assert!(out.contains("score = 1.000000"), "{out}");
        assert!(run(&["community", &path, "--query", "99"]).is_err());
        assert!(run(&["community", &path, "--query", "0", "--metric", "cc"]).is_err());
        // Constraints: impossible min-k falls through gracefully.
        let out = run(&[
            "community",
            &path,
            "--query",
            "0",
            "--metric",
            "ad",
            "--min-k",
            "50",
        ])
        .unwrap();
        assert!(out.contains("no community satisfies"), "{out}");
    }

    #[test]
    fn truss_on_figure2() {
        let path = write_figure2();
        let out = run(&["truss", &path, "--metric", "den"]).unwrap();
        assert!(out.contains("tmax = 4"));
        assert!(out
            .lines()
            .any(|l| l.starts_with("internal density") && l.contains('4')));
    }

    #[test]
    fn truss_single_on_figure2() {
        let path = write_figure2();
        let out = run(&["truss", &path, "--metric", "den", "--single"]).unwrap();
        assert!(out.contains("tmax = 4"));
        // Best single 4-truss is a K4: density 1 over 4 vertices.
        let line = out
            .lines()
            .find(|l| l.starts_with("internal density"))
            .unwrap();
        assert!(line.contains("1.000000"), "{line}");
        assert!(line.trim_end().ends_with('4'), "{line}");
    }

    #[test]
    fn convert_to_metis_and_back() {
        let txt = fixture_path("m.txt");
        let metis = fixture_path("m.metis");
        let back = fixture_path("m2.txt");
        let g = bestk_graph::generators::paper_figure2();
        io::write_edge_list_path(&g, &txt).unwrap();
        run(&["convert", &txt, &metis]).unwrap();
        let out = run(&["stats", &metis]).unwrap();
        assert!(out.contains("edges           19"), "{out}");
        run(&["convert", &metis, &back]).unwrap();
        let g2 = crate::load_graph(&back).unwrap();
        assert_eq!(g2.num_edges(), 19);
    }

    #[test]
    fn convert_to_dot() {
        let txt = fixture_path("d.txt");
        let dot = fixture_path("d.dot");
        io::write_edge_list_path(&bestk_graph::generators::regular::complete(4), &txt).unwrap();
        run(&["convert", &txt, &dot]).unwrap();
        let content = std::fs::read_to_string(&dot).unwrap();
        assert!(content.starts_with("graph bestk {"));
        assert_eq!(content.matches(" -- ").count(), 6);
    }

    #[test]
    fn verify_flag_passes_on_honest_outputs() {
        let path = write_figure2();
        let out = run(&["stats", &path, "--verify"]).unwrap();
        assert!(out.contains("invariants hold"), "{out}");
        let out = run(&["analyze", &path, "--verify"]).unwrap();
        assert!(out.contains("re-checked against baselines"), "{out}");
        let out = run(&["truss", &path, "--verify"]).unwrap();
        assert!(out.contains("truss decomposition invariants hold"), "{out}");
    }

    #[test]
    fn threads_flag_output_is_identical_across_counts() {
        // The determinism contract, end to end: every command that takes
        // --threads must print byte-identical reports at 1 and 4 threads
        // (and with the flag absent).
        let path = write_figure2();
        for cmd in ["stats", "analyze", "truss"] {
            let default = run(&[cmd, &path]).unwrap();
            let one = run(&[cmd, &path, "--threads", "1"]).unwrap();
            let four = run(&[cmd, &path, "--threads=4"]).unwrap();
            assert_eq!(one, default, "{cmd}: --threads=1 vs default");
            assert_eq!(four, default, "{cmd}: --threads=4 vs default");
        }
    }

    #[test]
    fn threads_flag_rejects_zero_and_non_numeric() {
        let path = write_figure2();
        for bad in ["0", "abc", "-2", "1.5", ""] {
            let err = run(&["stats", &path, &format!("--threads={bad}")])
                .unwrap_err()
                .to_string();
            assert!(
                err.contains("positive integer") && err.contains("--threads=4"),
                "{bad:?}: {err}"
            );
        }
        // Commands without parallel kernels do not accept the flag.
        let err = run(&["clique", &path, "--threads", "2"])
            .unwrap_err()
            .to_string();
        assert!(err.contains("--threads"), "{err}");
    }

    #[test]
    fn typoed_flag_is_rejected_not_ignored() {
        let path = write_figure2();
        let err = run(&["stats", &path, "--verfy"]).unwrap_err().to_string();
        assert!(err.contains("--verfy"), "{err}");
        assert!(err.contains("--verify"), "{err}");
        let err = run(&["clique", &path, "--verify"]).unwrap_err().to_string();
        assert!(err.contains("takes no options"), "{err}");
    }

    #[test]
    fn generate_and_convert_roundtrip() {
        let txt = fixture_path("gen.txt");
        let bin = fixture_path("gen.bin");
        let out = run(&[
            "generate", "er-gnm", "--n", "50", "--m", "120", "--seed", "7", "--out", &txt,
        ])
        .unwrap();
        assert!(out.contains("m=120"));
        let out = run(&["convert", &txt, &bin]).unwrap();
        assert!(out.contains("m=120"));
        let g = crate::load_graph(&bin).unwrap();
        assert_eq!(g.num_edges(), 120);
        assert!(run(&["generate", "bogus", "--out", &txt]).is_err());
        assert!(
            run(&["generate", "er-gnm", "--n", "50", "--m", "120"]).is_err(),
            "missing --out"
        );
    }

    #[test]
    fn generate_all_families() {
        for (family, extra) in [
            ("er-gnp", vec!["--n", "40", "--p", "0.1"]),
            ("ws", vec!["--n", "60", "--k", "4"]),
            ("chung-lu", vec!["--n", "100"]),
            ("rmat", vec!["--scale", "6"]),
            ("ba", vec!["--n", "50"]),
            ("cliques", vec!["--n", "60", "--cliques", "10"]),
        ] {
            let path = fixture_path(&format!("{family}.txt"));
            let mut args = vec!["generate", family];
            args.extend(extra.iter());
            args.extend(["--out", &path]);
            let out = run(&args).unwrap();
            assert!(out.contains("wrote"), "{family}");
        }
    }

    #[test]
    fn snapshot_then_query_round_trip() {
        let graph = write_figure2();
        let snap = fixture_path("fig2.bestk");
        let out = run(&["snapshot", &graph, &snap]).unwrap();
        assert!(out.contains("wrote"), "{out}");
        assert!(out.contains("stats\tn=12\tm=19\tkmax=3"), "{out}");
        let out = run(&[
            "query",
            &snap,
            "stats",
            "bestkset ad",
            "bestcore cc",
            "coreof 5",
        ])
        .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "ok\tstats\tn=12\tm=19\tkmax=3\tcores=3");
        assert_eq!(lines[1], "ok\tbestkset\tad\tk=2\tscore=3.1666666666666665");
        assert!(lines[2].starts_with("ok\tbestcore\tcc\t"), "{}", lines[2]);
        assert_eq!(lines[3], "ok\tcoreof\t5\tcoreness=2");
    }

    #[test]
    fn query_output_is_identical_at_every_thread_count() {
        let graph = write_figure2();
        let snap = fixture_path("fig2-threads.bestk");
        run(&["snapshot", &graph, &snap, "--threads", "2"]).unwrap();
        let queries = [
            "stats",
            "profile ad",
            "profile mod",
            "bestkset den",
            "bestcore sep",
            "coreof 0",
            "coreof 11",
        ];
        let mut base = None;
        for threads in ["1", "2", "4"] {
            let mut args = vec!["query", &snap];
            args.extend(queries.iter());
            args.extend(["--threads", threads]);
            let out = run(&args).unwrap();
            match &base {
                None => base = Some(out),
                Some(expected) => assert_eq!(&out, expected, "threads={threads}"),
            }
        }
    }

    #[test]
    fn query_emits_err_lines_for_bad_queries_without_failing() {
        let graph = write_figure2();
        let snap = fixture_path("fig2-err.bestk");
        run(&["snapshot", &graph, &snap]).unwrap();
        let out = run(&["query", &snap, "bestkset zz", "coreof 999", "stats"]).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("err\tbad query"), "{}", lines[0]);
        assert!(lines[1].starts_with("err\tbad query"), "{}", lines[1]);
        assert_eq!(lines[2], "ok\tstats\tn=12\tm=19\tkmax=3\tcores=3");
    }

    #[test]
    fn query_rejects_corrupt_snapshots_structurally() {
        let graph = write_figure2();
        let snap = fixture_path("fig2-corrupt.bestk");
        run(&["snapshot", &graph, &snap]).unwrap();
        let mut bytes = std::fs::read(&snap).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&snap, &bytes).unwrap();
        let err = run(&["query", &snap, "stats"]).unwrap_err();
        assert!(matches!(err, CliError::Engine(_)), "{err}");
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn engine_commands_strictly_parse_options() {
        let graph = write_figure2();
        let snap = fixture_path("fig2-strict.bestk");
        run(&["snapshot", &graph, &snap]).unwrap();
        for bad in [
            vec!["snapshot", &graph, &snap, "--threads", "0"],
            vec!["snapshot", &graph, &snap, "--budget-mb", "4"],
            vec!["query", &snap, "stats", "--threads", "nope"],
            vec!["query", &snap, "stats", "--budget-mb", "0"],
            vec!["query", &snap, "stats", "--budget-mb", "-3"],
            vec!["query", &snap, "stats", "--port", "9"],
            vec!["query", &snap],
            vec!["serve", "--port", "0"],
            vec!["serve", "--port", "70000"],
            vec!["serve", "--port", "abc"],
            vec!["serve", "--timeout-ms", "0"],
            vec!["serve", "--timeout-ms", "soon"],
            vec!["serve", "--budget-mb", "0"],
            vec!["serve", "--listen", "1234"],
            vec!["serve", "stray-positional"],
            vec!["serve", "--stdin", "--port", "7878"],
            vec!["metrics", &graph, "--threads", "0"],
            vec!["metrics", &graph, "--verbose"],
            vec!["metrics"],
        ] {
            let err = run(&bad).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{bad:?} -> {err}");
        }
    }

    #[test]
    fn metrics_command_prints_the_exposition() {
        let graph = write_figure2();
        let out = run(&["metrics", &graph]).unwrap();
        for needle in [
            "phase.peel.calls ",
            "phase.sweep.calls ",
            "phase.select.calls ",
            "exec.dispatches ",
        ] {
            assert!(
                out.lines().any(|l| l.starts_with(needle)),
                "missing {needle:?} in:\n{out}"
            );
        }
        // Exposition lines are `name value`.
        for line in out.lines() {
            let (_, value) = line.rsplit_once(' ').expect("name value");
            assert!(value.parse::<i64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn stats_backend_flag_is_observation_invariant() {
        let path = write_figure2();
        let csr = run(&["stats", &path, "--backend", "csr"]).unwrap();
        let succinct = run(&["stats", &path, "--backend=succinct"]).unwrap();
        // Identical stats, different backend trailer.
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("backend"))
                .map(|l| format!("{l}\n"))
                .collect::<String>()
        };
        assert_eq!(strip(&csr), strip(&succinct));
        assert_eq!(strip(&csr), run(&["stats", &path]).unwrap());
        assert!(csr.contains("backend         csr"), "{csr}");
        assert!(succinct.contains("backend         succinct"), "{succinct}");
        assert!(run(&["stats", &path, "--backend", "mips"]).is_err());
        // --verify re-checks against the canonical CSR on every backend.
        let out = run(&["stats", &path, "--backend=succinct", "--verify"]).unwrap();
        assert!(out.contains("invariants hold"), "{out}");
    }

    #[test]
    fn snapshot_v2_round_trips_through_query() {
        let graph = write_figure2();
        let snap = fixture_path("fig2-v2.bestk");
        let out = run(&["snapshot", &graph, &snap, "--format", "v2"]).unwrap();
        assert!(out.contains("stats\tn=12\tm=19\tkmax=3"), "{out}");
        // The query path sniffs the magic and opens v2 zero-copy.
        let out = run(&["query", &snap, "stats", "bestkset ad", "coreof 5"]).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "ok\tstats\tn=12\tm=19\tkmax=3\tcores=3");
        assert_eq!(lines[1], "ok\tbestkset\tad\tk=2\tscore=3.1666666666666665");
        assert_eq!(lines[2], "ok\tcoreof\t5\tcoreness=2");
        assert!(run(&["snapshot", &graph, &snap, "--format", "v9"]).is_err());
    }

    #[test]
    fn query_respects_budget_option() {
        let graph = write_figure2();
        let snap = fixture_path("fig2-budget.bestk");
        run(&["snapshot", &graph, &snap]).unwrap();
        let out = run(&["query", &snap, "stats", "--budget-mb", "64"]).unwrap();
        assert!(out.starts_with("ok\tstats"), "{out}");
    }

    #[test]
    fn fuzz_sweeps_a_surface_and_tallies() {
        let out = run(&["fuzz", "wal", "--seeds", "4"]).unwrap();
        let line = out.lines().next().unwrap();
        assert!(line.starts_with("fuzz\twal\tinputs="), "{out}");
        assert!(line.contains("panics=0"), "{out}");
        assert!(line.contains("violations=0"), "{out}");
        // `all` sweeps every surface.
        let out = run(&["fuzz", "all", "--seeds", "2"]).unwrap();
        for surface in ["graph-io", "snapshot", "wal", "serve"] {
            assert!(out.contains(&format!("fuzz\t{surface}\t")), "{out}");
        }
        assert!(matches!(
            run(&["fuzz", "nope"]).unwrap_err(),
            CliError::Usage(_)
        ));
        assert!(matches!(
            run(&["fuzz", "wal", "--budget", "1"]).unwrap_err(),
            CliError::Usage(_)
        ));
        // Zero-valued knobs are strict usage errors, not silent no-ops.
        assert!(matches!(
            run(&["fuzz", "wal", "--seeds", "0"]).unwrap_err(),
            CliError::Usage(_)
        ));
        assert!(matches!(
            run(&["fuzz", "wal", "--budget-bytes", "0"]).unwrap_err(),
            CliError::Usage(_)
        ));
    }

    #[test]
    fn replay_round_trips_a_recorded_session() {
        let graph = write_figure2();
        let snap = fixture_path("fig2-replay.bestk");
        run(&["snapshot", &graph, &snap]).unwrap();
        // Record a session by hand — the serve command reads the process
        // stdin, so tests drive the library entry point directly.
        let limits = bestk_engine::ServeLimits::default();
        let mut recorder = bestk_engine::ServeRecorder::new(&limits, "");
        let engine = bestk_engine::SharedEngine::with_budget(None);
        let policy = bestk_exec::ExecPolicy::auto();
        let session = format!("load g {snap}\nquery g stats\nquit\n");
        let mut replies = Vec::new();
        bestk_engine::serve_lines_recorded(
            &engine,
            &policy,
            session.as_bytes(),
            &mut replies,
            &limits,
            &mut recorder,
        )
        .unwrap();
        let rec = fixture_path("session.bestkrec");
        recorder.save(&rec).unwrap();

        let out = run(&["replay", &rec]).unwrap();
        assert!(out.contains("requests=3"), "{out}");
        assert!(out.contains("mismatches=0"), "{out}");
        // Thread count must not change a single reply byte.
        for threads in ["1", "2", "4"] {
            let out = run(&["replay", &rec, "--threads", threads]).unwrap();
            assert!(out.contains("mismatches=0"), "{out}");
        }
        // A corrupt recording is a typed engine error, not a panic.
        let bad = fixture_path("bad.bestkrec");
        std::fs::write(&bad, b"BESTKREC1 but then garbage").unwrap();
        assert!(matches!(
            run(&["replay", &bad]).unwrap_err(),
            CliError::Engine(_)
        ));
    }

    #[test]
    fn serve_record_rejects_the_tcp_transport() {
        let err = run(&["serve", "--port", "1234", "--record", "x.bestkrec"]).unwrap_err();
        assert!(err.to_string().contains("stdio"), "{err}");
    }
}
