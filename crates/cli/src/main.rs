//! `bestk` — the command-line entry point. All logic lives in the library
//! (`bestk_cli::run`) so it can be unit-tested without spawning processes.

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    // Chaos drills opt in via the BESTK_FAULTS env var (e.g.
    // `seed=7;snapshot.read=bitflip@0.5`); a malformed spec is a usage
    // error, not something to silently ignore.
    match bestk_faults::init_from_env() {
        Ok(false) => {}
        Ok(true) => eprintln!(
            "note: fault injection enabled via {}",
            bestk_faults::ENV_VAR
        ),
        Err(e) => {
            eprintln!("error: bad {} spec: {e}", bestk_faults::ENV_VAR);
            return ExitCode::from(2);
        }
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match bestk_cli::run(&args, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
