//! `bestk` — the command-line entry point. All logic lives in the library
//! (`bestk_cli::run`) so it can be unit-tested without spawning processes.

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match bestk_cli::run(&args, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
