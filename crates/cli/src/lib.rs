//! # bestk-cli
//!
//! Library backing the `bestk` command-line tool. The binary is a thin shim
//! over [`run`], which parses a subcommand and writes its report to the
//! given writer (fully unit-testable, no process spawning needed).
//!
//! ```text
//! bestk stats    <graph>                       dataset statistics
//! bestk analyze  <graph> [--metric M] [--extended]
//!                                              best k-core set + best single core
//! bestk profile  <graph> --metric M [--single] per-k score series as CSV
//! bestk densest  <graph> [--method opt-d|core-app|peel|exact]
//! bestk clique   <graph>                       exact maximum clique
//! bestk sck      <graph> --k K --h H --query V size-constrained k-core
//! bestk truss    <graph> [--metric M]          best k-truss set
//! bestk generate <family> --n N [...] --out F  synthetic graphs
//! bestk convert  <in> <out>                    text <-> binary by extension
//! bestk snapshot <graph> <out.bestk>           persist the full best-k index
//! bestk query    <snapshot> <query>...         one-shot snapshot queries
//! bestk mutate   <snapshot> <ops|--stream F>   stage + commit edge mutations
//! bestk serve    [--port P | --stdin]          serving loop (stdio or TCP)
//! bestk replay   <recording>                   re-drive a recorded session
//! bestk fuzz     <surface>|all [--seeds N]     structured fuzzing sweep
//! bestk metrics  <graph>                       pipeline run + metrics exposition
//! ```
//!
//! Graphs are read from SNAP-style text edge lists or the workspace binary
//! format, auto-detected by content.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod args;
mod commands;
mod load;

use std::fmt;
use std::io::Write;

pub use args::ParsedArgs;
pub use load::load_graph;

/// CLI failure modes.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation: unknown command, missing argument, malformed value.
    Usage(String),
    /// The graph file could not be read or parsed.
    Graph(bestk_graph::GraphError),
    /// Output could not be written.
    Io(std::io::Error),
    /// A snapshot or serving-engine failure (corrupt snapshot, protocol
    /// error, unknown dataset).
    Engine(bestk_engine::EngineError),
    /// The request was well-formed but unsatisfiable (e.g. infeasible
    /// query).
    Failed(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}\n\n{USAGE}"),
            CliError::Graph(e) => write!(f, "graph error: {e}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Engine(e) => write!(f, "engine error: {e}"),
            CliError::Failed(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<bestk_graph::GraphError> for CliError {
    fn from(e: bestk_graph::GraphError) -> Self {
        CliError::Graph(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<bestk_engine::EngineError> for CliError {
    fn from(e: bestk_engine::EngineError) -> Self {
        CliError::Engine(e)
    }
}

const USAGE: &str = "usage: bestk <command> [args]
commands:
  stats    <graph> [--backend csr|succinct]          dataset statistics
  analyze  <graph> [--metric M] [--extended]         best k per metric
  profile  <graph> --metric M [--single]             per-k scores (CSV)
  densest  <graph> [--method opt-d|core-app|peel|exact]
  clique   <graph>                                   exact maximum clique
  sck      <graph> --k K --h H --query V             size-constrained k-core
  community <graph> --query V [--metric M]           community search around V
  truss    <graph> [--metric M] [--single]           best k-truss (set)
  generate <family> --n N [--m M|--avg-deg D|...] --seed S --out FILE
  convert  <in> <out>                                text <-> binary
  snapshot <graph> <out.bestk> [--threads N] [--format v1|v2]
                                                     persist the full index
                                                     (v2 opens zero-copy)
  query    <snapshot> <query>... [--threads N] [--budget-mb N]
                                                     one-shot snapshot queries
  mutate   <snapshot> [add:u:v|del:u:v ...] [--stream mixed|delete-heavy|focused
           --count N --seed S] [--commit-every N] [--threads N]
                                                     stage + commit edge mutations
                                                     (durable in <snapshot>.wal)
  serve    [--port P | --stdin] [--budget-mb N] [--threads N] [--timeout-ms T]
           [--max-inflight N] [--max-line-bytes N] [--metrics-dump]
           [--record FILE]                           serving loop (stdio or TCP;
                                                     --record captures stdio
                                                     sessions to a .bestkrec)
  replay   <recording> [--threads N]                 re-drive a .bestkrec and
                                                     diff replies byte-for-byte
  fuzz     <surface>|all [--seeds N] [--budget-bytes B] [--seed-start S]
                                                     structured fuzzing over
                                                     graph-io snapshot wal serve
  metrics  <graph> [--threads N]                     full best-k pipeline run,
                                                     then the metrics exposition
metrics M: ad den cr con mod cc sep td (default: all six paper metrics)
stats/analyze/truss accept --verify: re-check every reported answer against
the executable-specification oracles (slower; exits non-zero on mismatch)
stats/analyze/truss accept --threads N: run the parallel kernels on N worker
threads (default: auto-detect; output is identical at every thread count)
families: er-gnm er-gnp chung-lu rmat ba ws cliques";

/// Parses `argv` and executes the chosen subcommand, writing the report to
/// `out`.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = ParsedArgs::parse(argv)?;
    match parsed.command.as_str() {
        "" | "help" | "-h" | "--help" => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        "stats" => commands::stats(&parsed, out),
        "analyze" => commands::analyze(&parsed, out),
        "profile" => commands::profile(&parsed, out),
        "densest" => commands::densest(&parsed, out),
        "clique" => commands::clique(&parsed, out),
        "sck" => commands::sck(&parsed, out),
        "community" => commands::community(&parsed, out),
        "truss" => commands::truss(&parsed, out),
        "generate" => commands::generate(&parsed, out),
        "convert" => commands::convert(&parsed, out),
        "snapshot" => commands::snapshot(&parsed, out),
        "query" => commands::query(&parsed, out),
        "mutate" => commands::mutate(&parsed, out),
        "serve" => commands::serve(&parsed, out),
        "replay" => commands::replay(&parsed, out),
        "fuzz" => commands::fuzz(&parsed, out),
        "metrics" => commands::metrics(&parsed, out),
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

/// Resolves a metric abbreviation.
pub(crate) fn metric_by_abbrev(abbrev: &str) -> Result<bestk_core::Metric, CliError> {
    bestk_core::Metric::EXTENDED
        .iter()
        .copied()
        .find(|m| m.abbrev() == abbrev)
        .ok_or_else(|| CliError::Usage(format!("unknown metric {abbrev:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(args: &[&str]) -> Result<String, CliError> {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        run(&argv, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf8 output"))
    }

    #[test]
    fn help_prints_usage() {
        let out = run_str(&["help"]).unwrap();
        assert!(out.contains("usage: bestk"));
        assert!(run_str(&[]).unwrap().contains("usage"));
    }

    #[test]
    fn unknown_command_is_usage_error() {
        let err = run_str(&["frobnicate"]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn metric_lookup() {
        assert_eq!(
            metric_by_abbrev("ad").unwrap(),
            bestk_core::Metric::AverageDegree
        );
        assert_eq!(
            metric_by_abbrev("sep").unwrap(),
            bestk_core::Metric::Separability
        );
        assert!(metric_by_abbrev("xyz").is_err());
    }
}
