//! Graph loading with format auto-detection.

use bestk_graph::{io, CsrGraph};

use crate::CliError;

/// Loads a graph from `path`. `.metis` / `.graph` files parse as METIS;
/// otherwise the format is sniffed: files starting with the binary magic
/// `BESTKGR1` are read as binary CSR, everything else as a SNAP-style text
/// edge list (sparse ids are relabeled densely). Delegates to
/// [`io::read_auto_path`] (the engine's snapshot-rebuild fallback uses the
/// same loader, so a path that works here works there).
pub fn load_graph(path: &str) -> Result<CsrGraph, CliError> {
    Ok(io::read_auto_path(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bestk_graph::GraphBuilder;

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("bestk-cli-load-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn loads_text_and_binary() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0, 1), (1, 2), (2, 0)]);
        let g = b.build();
        let dir = tmpdir();
        let text = dir.join("g.txt");
        let bin = dir.join("g.bin");
        io::write_edge_list_path(&g, &text).unwrap();
        io::write_binary_path(&g, &bin).unwrap();
        let gt = load_graph(text.to_str().unwrap()).unwrap();
        let gb = load_graph(bin.to_str().unwrap()).unwrap();
        assert_eq!(gt.num_edges(), 3);
        assert_eq!(gb, g);
        std::fs::remove_file(text).ok();
        std::fs::remove_file(bin).ok();
    }

    #[test]
    fn missing_file_is_a_graph_error() {
        assert!(matches!(
            load_graph("/nonexistent/definitely-not-here.txt"),
            Err(CliError::Graph(_))
        ));
    }

    #[test]
    fn tiny_text_file_without_magic() {
        let dir = tmpdir();
        let path = dir.join("tiny.txt");
        std::fs::write(&path, "0 1\n").unwrap();
        let g = load_graph(path.to_str().unwrap()).unwrap();
        assert_eq!(g.num_edges(), 1);
        std::fs::remove_file(path).ok();
    }
}
