//! Shared fixture harness for the analyzer's end-to-end tests: a scratch
//! workspace on disk that `bestk_analyze::run` walks like the real one.

// Each integration-test binary compiles its own copy of this module and
// uses a different slice of it.
#![allow(dead_code)]

use std::fs;
use std::path::{Path, PathBuf};

/// Scratch workspace under the target dir (always writable during tests),
/// removed on drop so reruns start clean.
pub struct Fixture {
    pub root: PathBuf,
}

impl Fixture {
    pub fn new(name: &str) -> Fixture {
        let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/demo/src")).expect("mkdir fixture");
        Fixture { root }
    }

    pub fn write(&self, rel: &str, text: &str) {
        let path = self.root.join(rel);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).expect("mkdir parent");
        }
        fs::write(path, text).expect("write fixture file");
    }

    /// Sorted lint names of every finding in the fixture tree.
    pub fn lints(&self) -> Vec<String> {
        let mut lints: Vec<String> = self.diags().iter().map(|d| d.lint.to_string()).collect();
        lints.sort();
        lints
    }

    /// All diagnostics, in the engine's deterministic order.
    pub fn diags(&self) -> Vec<bestk_analyze::Diagnostic> {
        let (diags, _) = bestk_analyze::run(&self.root).expect("run succeeds");
        diags
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

/// A crate root that passes the root lints on its own.
pub const CLEAN_LIB: &str = "//! Demo crate.\n#![forbid(unsafe_code)]\npub mod util;\n";
