//! End-to-end fixtures for the determinism and hot-path arithmetic
//! passes: each pass gets a firing workspace and a non-firing twin, so
//! both the detection and its boundaries (crate gating, allow comments)
//! are pinned at the `bestk_analyze::run` level.

mod common;

use common::{Fixture, CLEAN_LIB};

#[test]
fn hash_map_iteration_fires() {
    let fx = Fixture::new("nondet-iter-fires");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/demo/src/util.rs",
        "//! Utilities.\n\
         use std::collections::HashMap;\n\
         pub fn dump(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
             let m: &HashMap<u32, u32> = m;\n\
             m.keys().copied().collect()\n\
         }\n",
    );
    assert!(
        fx.lints().contains(&"nondet-iter".to_string()),
        "{:?}",
        fx.lints()
    );
}

#[test]
fn btree_iteration_and_hash_lookup_do_not_fire() {
    let fx = Fixture::new("nondet-iter-clean");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/demo/src/util.rs",
        "//! Utilities.\n\
         use std::collections::{BTreeMap, HashMap};\n\
         pub fn dump(ordered: &BTreeMap<u32, u32>) -> Vec<u32> {\n\
             ordered.keys().copied().collect()\n\
         }\n\
         pub fn lookup(hashed: &HashMap<u32, u32>, k: u32) -> Option<u32> {\n\
             hashed.get(&k).copied()\n\
         }\n",
    );
    assert_eq!(fx.lints(), Vec::<String>::new());
}

#[test]
fn unordered_float_fold_fires() {
    let fx = Fixture::new("float-reduce-fires");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/demo/src/util.rs",
        "//! Utilities.\n\
         pub fn total(xs: &[f64]) -> f64 {\n\
             xs.iter().sum::<f64>()\n\
         }\n",
    );
    assert_eq!(fx.lints(), vec!["float-reduce"]);
}

#[test]
fn float_reduce_is_blessed_inside_exec_and_by_allow() {
    let fx = Fixture::new("float-reduce-clean");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/demo/src/util.rs",
        "//! Utilities.\n\
         pub fn total(xs: &[f64]) -> f64 {\n\
             // bestk-analyze: allow(float-reduce) — sequential in-order slice sum\n\
             xs.iter().sum::<f64>()\n\
         }\n",
    );
    fx.write(
        "crates/exec/src/lib.rs",
        "//! Exec crate: the blessed ordered-merge reduction point.\n\
         #![forbid(unsafe_code)]\n\
         pub fn merge(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n",
    );
    assert_eq!(fx.lints(), Vec::<String>::new());
}

#[test]
fn raw_atomic_fires_outside_the_policed_crates() {
    let fx = Fixture::new("raw-atomic-fires");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/demo/src/util.rs",
        "//! Utilities.\n\
         use std::sync::atomic::{AtomicUsize, Ordering};\n\
         pub fn bump(c: &AtomicUsize) -> usize {\n\
             c.fetch_add(1, Ordering::Relaxed)\n\
         }\n",
    );
    let lints = fx.lints();
    assert!(
        lints.iter().filter(|l| *l == "raw-atomic").count() >= 2,
        "type use and fetch_add should both fire: {lints:?}"
    );
}

#[test]
fn atomics_inside_obs_and_exec_do_not_fire() {
    let fx = Fixture::new("raw-atomic-clean");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/demo/src/util.rs",
        "//! Utilities.\npub fn twice(x: u64) -> u64 { x * 2 }\n",
    );
    fx.write(
        "crates/obs/src/lib.rs",
        "//! Obs crate: counters live here.\n\
         #![forbid(unsafe_code)]\n\
         use std::sync::atomic::{AtomicU64, Ordering};\n\
         pub fn bump(c: &AtomicU64) -> u64 { c.fetch_add(1, Ordering::Relaxed) }\n",
    );
    assert_eq!(fx.lints(), Vec::<String>::new());
}

#[test]
fn unchecked_degree_arithmetic_fires_in_hot_crates() {
    let fx = Fixture::new("unchecked-arith-fires");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/demo/src/util.rs",
        "//! Utilities.\npub fn twice(x: u64) -> u64 { x * 2 }\n",
    );
    fx.write(
        "crates/core/src/lib.rs",
        "//! Core crate.\n\
         #![forbid(unsafe_code)]\n\
         pub fn next_degree(deg: usize) -> usize { deg + 1 }\n",
    );
    assert_eq!(fx.lints(), vec!["unchecked-arith"]);
}

#[test]
fn checked_arithmetic_and_cold_crates_do_not_fire() {
    let fx = Fixture::new("unchecked-arith-clean");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    // Same raw `deg + 1` in a cold crate: the pass only polices the hot
    // crates where overflow corrupts results.
    fx.write(
        "crates/demo/src/util.rs",
        "//! Utilities.\npub fn next_degree(deg: usize) -> usize { deg + 1 }\n",
    );
    fx.write(
        "crates/core/src/lib.rs",
        "//! Core crate.\n\
         #![forbid(unsafe_code)]\n\
         pub fn next_degree(deg: usize) -> usize { deg.saturating_add(1) }\n",
    );
    assert_eq!(fx.lints(), Vec::<String>::new());
}

#[test]
fn unchecked_arith_honors_a_reasoned_allow() {
    let fx = Fixture::new("unchecked-arith-allow");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/demo/src/util.rs",
        "//! Utilities.\npub fn twice(x: u64) -> u64 { x * 2 }\n",
    );
    fx.write(
        "crates/core/src/lib.rs",
        "//! Core crate.\n\
         #![forbid(unsafe_code)]\n\
         pub fn next_degree(deg: usize) -> usize {\n\
             // bestk-analyze: allow(unchecked-arith) — deg is bounded by n, far below usize::MAX\n\
             deg + 1\n\
         }\n",
    );
    assert_eq!(fx.lints(), Vec::<String>::new());
}
