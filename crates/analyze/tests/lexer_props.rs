//! Property tests for the lexer's core contract: tokens tile the source
//! exactly — every byte belongs to exactly one token, in order — for
//! arbitrary text, for adversarial quote/comment soup, and for every real
//! source file in this repository.

use bestk_analyze::lex::{lex, TokenKind};
use bestk_graph::testkit::{check, Gen};

/// Asserts the tiling invariant and returns the token count.
fn assert_tiles(src: &str) -> usize {
    let tokens = lex(src);
    let mut pos = 0;
    for t in &tokens {
        assert_eq!(
            t.start, pos,
            "gap or overlap at byte {pos} in {src:?} (token {t:?})"
        );
        assert!(t.end > t.start, "empty token {t:?} in {src:?}");
        pos = t.end;
    }
    assert_eq!(pos, src.len(), "tokens must cover the tail of {src:?}");
    // Reassembling the token texts reproduces the source byte-for-byte.
    let rebuilt: String = tokens.iter().map(|t| t.text(src)).collect();
    assert_eq!(rebuilt, src);
    tokens.len()
}

#[test]
fn random_ascii_text_tiles() {
    check("lexer_tiles_ascii", 400, |g: &mut Gen| {
        let src = g.ascii_text(200);
        assert_tiles(&src);
    });
}

#[test]
fn random_bytes_lossy_decoded_tile() {
    check("lexer_tiles_lossy_bytes", 400, |g: &mut Gen| {
        let bytes = g.bytes(200);
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_tiles(&src);
    });
}

/// Quote-and-comment soup: the constructs whose unterminated forms are the
/// classic lexer crashers, spliced at random.
#[test]
fn quote_and_comment_soup_tiles() {
    const PIECES: &[&str] = &[
        "\"", "'", "r#\"", "\"#", "//", "/*", "*/", "\\\"", "\\'", "\n", "b'", "'a", "'_", "let",
        "x", "0x1f", "1e9", "'\\''", "\"s\"", "/**/", "r\"", "#", "\\",
    ];
    check("lexer_tiles_soup", 600, |g: &mut Gen| {
        let n = g.usize_in(0, 40);
        let mut src = String::new();
        for _ in 0..n {
            src.push_str(PIECES[g.usize_in(0, PIECES.len())]);
        }
        assert_tiles(&src);
    });
}

#[test]
fn line_counts_are_monotone_and_match_the_source() {
    check("lexer_lines_monotone", 300, |g: &mut Gen| {
        let src = g.ascii_text(300);
        let tokens = lex(&src);
        let mut last = 1;
        for t in &tokens {
            assert!(t.line >= last, "line numbers must not decrease");
            last = t.line;
        }
        if let Some(t) = tokens.last() {
            let newlines_before = src[..t.start].matches('\n').count();
            assert_eq!(t.line as usize, newlines_before + 1);
        }
    });
}

/// Every real source file in the repository tiles — the lexer's contract
/// holds on the exact corpus the analyzer polices.
#[test]
fn every_workspace_source_file_tiles() {
    let repo_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root");
    let files = bestk_analyze::walk::discover(&repo_root).expect("walk succeeds");
    assert!(files.len() > 100, "the walk should see the whole workspace");
    let mut strings = 0usize;
    for f in &files {
        let text = std::fs::read_to_string(&f.abs_path).expect("read source");
        assert_tiles(&text);
        strings += lex(&text)
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Str | TokenKind::RawStr))
            .count();
    }
    assert!(strings > 0, "the corpus exercises string tokens");
}
