//! End-to-end fixture tests: build a synthetic workspace on disk, run the
//! full `bestk_analyze::run` pass over it, and assert that injected
//! violations — an `unwrap()` in library code, a crate root without
//! `#![forbid(unsafe_code)]`, an unblessed truncating cast — are each
//! reported, while the clean twin passes.

mod common;

use common::{Fixture, CLEAN_LIB};

#[test]
fn clean_workspace_passes() {
    let fx = Fixture::new("clean");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/demo/src/util.rs",
        "//! Utilities.\npub fn twice(x: u64) -> u64 { x * 2 }\n",
    );
    assert_eq!(fx.lints(), Vec::<String>::new());
}

#[test]
fn injected_unwrap_fails() {
    let fx = Fixture::new("unwrap");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/demo/src/util.rs",
        "//! Utilities.\npub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
    );
    assert_eq!(fx.lints(), vec!["no-unwrap"]);
}

#[test]
fn missing_forbid_unsafe_fails() {
    let fx = Fixture::new("unsafe");
    fx.write("crates/demo/src/lib.rs", "//! Demo crate.\npub fn f() {}\n");
    assert_eq!(fx.lints(), vec!["forbid-unsafe"]);
}

#[test]
fn unblessed_truncating_cast_fails() {
    let fx = Fixture::new("cast");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/demo/src/util.rs",
        "//! Utilities.\npub fn id(i: usize) -> u32 { i as u32 }\n",
    );
    assert_eq!(fx.lints(), vec!["no-raw-cast"]);
}

#[test]
fn cast_module_and_allow_comments_are_honored() {
    let fx = Fixture::new("blessed");
    fx.write(
        "crates/demo/src/lib.rs",
        CLEAN_LIB.replace("util", "cast").as_str(),
    );
    fx.write(
        "crates/demo/src/cast.rs",
        "//! Checked casts.\npub fn id(i: usize) -> u32 { i as u32 }\n",
    );
    fx.write(
        "crates/demo/src/other.rs",
        "//! Other.\n\
         // bestk-analyze: allow(no-panic) — invariant breach is unrecoverable here\n\
         pub fn f(ok: bool) { if !ok { panic!(\"bad\") } }\n",
    );
    assert_eq!(fx.lints(), Vec::<String>::new());
}

#[test]
fn injected_raw_thread_fails_outside_exec() {
    let fx = Fixture::new("rawthread");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/demo/src/util.rs",
        "//! Utilities.\n\
         pub fn f() {\n    std::thread::spawn(|| ());\n}\n\
         pub fn g() {\n    std::thread::scope(|s| { let _ = s; });\n}\n",
    );
    assert_eq!(fx.lints(), vec!["no-raw-thread", "no-raw-thread"]);
}

#[test]
fn raw_threads_inside_exec_crate_pass() {
    let fx = Fixture::new("execthread");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/demo/src/util.rs",
        "//! Utilities.\npub fn twice(x: u64) -> u64 { x * 2 }\n",
    );
    fx.write(
        "crates/exec/src/lib.rs",
        "//! Scheduling seam: the one crate allowed to touch OS threads.\n\
         #![forbid(unsafe_code)]\n\
         pub fn go() {\n    std::thread::scope(|s| { let _ = s; });\n}\n",
    );
    assert_eq!(fx.lints(), Vec::<String>::new());
}

#[test]
fn injected_raw_net_fails_outside_engine() {
    let fx = Fixture::new("rawnet");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/demo/src/util.rs",
        "//! Utilities.\n\
         pub fn f() {\n    let _ = std::net::TcpListener::bind(\"127.0.0.1:0\");\n}\n",
    );
    // One line hits two needles (std::net and TcpListener).
    assert_eq!(fx.lints(), vec!["no-raw-net", "no-raw-net"]);
}

#[test]
fn raw_net_inside_engine_crate_passes() {
    let fx = Fixture::new("enginenet");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/demo/src/util.rs",
        "//! Utilities.\npub fn twice(x: u64) -> u64 { x * 2 }\n",
    );
    fx.write(
        "crates/engine/src/lib.rs",
        "//! Serving seam: the one crate allowed to open sockets.\n\
         #![forbid(unsafe_code)]\n\
         pub fn bind() {\n    let _ = std::net::TcpListener::bind(\"127.0.0.1:0\");\n}\n",
    );
    assert_eq!(fx.lints(), Vec::<String>::new());
}

#[test]
fn injected_raw_failpoint_fails_outside_faults() {
    let fx = Fixture::new("rawfailpoint");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/demo/src/util.rs",
        "//! Utilities.\n\
         pub fn f(plan: &bestk_faults::FaultPlan) {\n    bestk_faults::install_plan(plan);\n}\n\
         pub fn g() {\n    bestk_faults::clear_plan();\n}\n",
    );
    assert_eq!(fx.lints(), vec!["no-raw-failpoint", "no-raw-failpoint"]);
}

#[test]
fn raw_failpoint_inside_faults_crate_passes() {
    let fx = Fixture::new("faultsplumbing");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/demo/src/util.rs",
        "//! Utilities.\npub fn twice(x: u64) -> u64 { x * 2 }\n",
    );
    fx.write(
        "crates/faults/src/lib.rs",
        "//! Fault seam: the one crate allowed to own the global plan.\n\
         #![forbid(unsafe_code)]\n\
         pub fn with_plan(f: impl FnOnce()) {\n    install_plan(&make());\n    f();\n    clear_plan();\n}\n",
    );
    assert_eq!(fx.lints(), Vec::<String>::new());
}

#[test]
fn injected_raw_instant_fails_outside_obs() {
    let fx = Fixture::new("rawinstant");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/demo/src/util.rs",
        "//! Utilities.\n\
         pub fn stamp() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
    );
    assert_eq!(fx.lints(), vec!["no-raw-instant"]);
}

#[test]
fn raw_instant_inside_obs_crate_passes() {
    let fx = Fixture::new("obsclock");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/demo/src/util.rs",
        "//! Utilities.\npub fn twice(x: u64) -> u64 { x * 2 }\n",
    );
    fx.write(
        "crates/obs/src/clock.rs",
        "//! Clock seam: the one module allowed to read the OS monotonic clock.\n\
         pub fn now() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
    );
    assert_eq!(fx.lints(), Vec::<String>::new());
}

#[test]
fn injected_raw_graph_access_fails_outside_graph_crate() {
    let fx = Fixture::new("rawgraph");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/demo/src/util.rs",
        "//! Utilities.\n\
         pub fn width(g: &CsrGraph) -> usize {\n    g.offsets().len() + g.raw_neighbors().len()\n}\n\
         pub fn rebuild() -> CsrGraph {\n    CsrGraph::from_parts(vec![0], vec![])\n}\n",
    );
    assert_eq!(
        fx.lints(),
        vec!["no-raw-graph", "no-raw-graph", "no-raw-graph"]
    );
}

#[test]
fn raw_graph_access_inside_graph_crate_passes() {
    let fx = Fixture::new("graphowner");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/demo/src/util.rs",
        "//! Utilities.\npub fn twice(x: u64) -> u64 { x * 2 }\n",
    );
    fx.write(
        "crates/graph/src/transform.rs",
        "//! Representation owner: raw CSR surgery is this crate's job.\n\
         pub fn copy(g: &CsrGraph) -> CsrGraph {\n    \
         CsrGraph::from_parts(g.offsets().to_vec(), g.raw_neighbors().to_vec())\n}\n",
    );
    assert_eq!(fx.lints(), Vec::<String>::new());
}

#[test]
fn missing_module_doc_fails() {
    let fx = Fixture::new("nodoc");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write("crates/demo/src/util.rs", "pub fn f() {}\n");
    assert_eq!(fx.lints(), vec!["module-doc"]);
}

#[test]
fn panic_in_cfg_test_passes_but_library_panic_fails() {
    let fx = Fixture::new("panics");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/demo/src/util.rs",
        "//! Utilities.\n\
         pub fn f() { todo!() }\n\
         #[cfg(test)]\n\
         mod tests {\n    #[test]\n    fn t() { panic!(\"fine in tests\") }\n}\n",
    );
    assert_eq!(fx.lints(), vec!["no-panic"]);
}
