//! The reporting contract: JSON output is byte-identical across runs, and
//! the baseline workflow is shrink-only — covered findings pass, fresh
//! findings fail, fixed-but-listed findings go stale and fail too.

mod common;

use std::collections::BTreeSet;

use common::{Fixture, CLEAN_LIB};

fn dirty_fixture(name: &str) -> Fixture {
    let fx = Fixture::new(name);
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/demo/src/util.rs",
        "//! Utilities.\n\
         pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
         pub fn total(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n",
    );
    fx
}

#[test]
fn json_report_is_byte_identical_across_runs() {
    let fx = dirty_fixture("json-determinism");
    let a = {
        let diags = fx.diags();
        bestk_analyze::json::render(&diags, 2, &BTreeSet::new())
    };
    let b = {
        let diags = fx.diags();
        bestk_analyze::json::render(&diags, 2, &BTreeSet::new())
    };
    assert_eq!(a, b, "two walks over the same tree must render identically");
    assert!(a.contains("\"no-unwrap\": 1"));
    assert!(a.contains("\"float-reduce\": 1"));
}

#[test]
fn fingerprints_are_stable_across_runs() {
    let fx = dirty_fixture("fingerprint-stability");
    let a: Vec<String> = fx.diags().into_iter().map(|d| d.fingerprint).collect();
    let b: Vec<String> = fx.diags().into_iter().map(|d| d.fingerprint).collect();
    assert_eq!(a, b);
    for fp in &a {
        assert_eq!(fp.len(), 16, "fingerprints are 16 hex digits: {fp:?}");
        assert!(fp.chars().all(|c| c.is_ascii_hexdigit()));
    }
}

#[test]
fn baseline_covers_findings_and_goes_stale_when_fixed() {
    let fx = dirty_fixture("baseline-workflow");
    let diags = fx.diags();
    assert_eq!(diags.len(), 2);

    // The generated template carries every current finding; justify it.
    let template = bestk_analyze::baseline::render_template(&diags);
    let justified: String = template
        .lines()
        .map(|l| {
            if l.starts_with('#') {
                format!("{l}\n")
            } else {
                let head = l.split('#').next().unwrap_or(l).trim_end();
                format!("{head} # acknowledged for the workflow test\n")
            }
        })
        .collect();
    let entries = bestk_analyze::baseline::parse(&justified).expect("template parses");
    assert_eq!(entries.len(), 2);

    // Everything is covered: no fresh findings, nothing stale.
    let applied = bestk_analyze::baseline::apply(&diags, &entries);
    assert!(applied.fresh.is_empty());
    assert!(applied.stale.is_empty());
    assert_eq!(applied.baselined.len(), 2);

    // Fix the unwrap: its entry must go stale (shrink-only rule), while
    // the float finding stays covered.
    fx.write(
        "crates/demo/src/util.rs",
        "//! Utilities.\n\
         pub fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n\
         pub fn total(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n",
    );
    let after = fx.diags();
    assert_eq!(after.len(), 1);
    let applied = bestk_analyze::baseline::apply(&after, &entries);
    assert!(applied.fresh.is_empty());
    assert_eq!(applied.baselined.len(), 1);
    assert_eq!(applied.stale.len(), 1, "the fixed finding's entry is stale");
    assert_eq!(applied.stale[0].lint, "no-unwrap");
}

#[test]
fn baseline_rejects_entries_without_reasons() {
    let text = "cafecafecafecafe no-unwrap crates/demo/src/util.rs\n";
    assert!(bestk_analyze::baseline::parse(text).is_err());
    let text = "cafecafecafecafe no-unwrap crates/demo/src/util.rs # ok\n";
    assert!(
        bestk_analyze::baseline::parse(text).is_err(),
        "two-character reasons are not substantive"
    );
}

#[test]
fn the_checked_in_baseline_parses_and_matches_this_repo() {
    // Guards the real artifact: every entry must parse, carry a reason,
    // and the repo-root check must come back clean against it.
    let repo_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root");
    let text = std::fs::read_to_string(repo_root.join("analyze-baseline.txt"))
        .expect("checked-in baseline exists");
    let entries = bestk_analyze::baseline::parse(&text).expect("baseline parses");
    assert!(!entries.is_empty());
    let (diags, _) = bestk_analyze::run(&repo_root).expect("run succeeds");
    let applied = bestk_analyze::baseline::apply(&diags, &entries);
    let fresh: Vec<String> = applied
        .fresh
        .iter()
        .map(|d| format!("{}:{} {}", d.path, d.line, d.lint))
        .collect();
    assert!(fresh.is_empty(), "non-baselined findings: {fresh:#?}");
    let stale: Vec<String> = applied
        .stale
        .iter()
        .map(|e| format!("{} {}", e.fingerprint, e.path))
        .collect();
    assert!(stale.is_empty(), "stale baseline entries: {stale:#?}");
}
