//! End-to-end fixtures for the lock-discipline passes — the tests
//! `crates/engine/src/registry.rs` points at. Each pass gets a firing
//! workspace and a disciplined twin; the centerpiece pair contrasts the
//! naive shared-registry shape (guard held across the snapshot load and
//! the batch dispatch) with the checkout/publish shape `SharedEngine`
//! actually uses, proving the analyzer would catch the regression.

mod common;

use common::{Fixture, CLEAN_LIB};

#[test]
fn opposite_acquisition_orders_fire_lock_order() {
    let fx = Fixture::new("lock-order-fires");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/demo/src/util.rs",
        "//! Utilities.\n\
         pub fn ab() {\n\
             let a = A.lock();\n\
             let b = B.lock();\n\
             drop(b);\n\
             drop(a);\n\
         }\n\
         pub fn ba() {\n\
             let b = B.lock();\n\
             let a = A.lock();\n\
             drop(a);\n\
             drop(b);\n\
         }\n",
    );
    let lints = fx.lints();
    assert!(lints.contains(&"lock-order".to_string()), "{lints:?}");
}

#[test]
fn consistent_acquisition_order_reports_nesting_not_a_cycle() {
    let fx = Fixture::new("lock-order-clean");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/demo/src/util.rs",
        "//! Utilities.\n\
         pub fn ab() {\n\
             let a = A.lock();\n\
             // bestk-analyze: allow(lock-nested) — documented order A -> B everywhere\n\
             let b = B.lock();\n\
             drop(b);\n\
             drop(a);\n\
         }\n\
         pub fn ab_again() {\n\
             let a = A.lock();\n\
             // bestk-analyze: allow(lock-nested) — documented order A -> B everywhere\n\
             let b = B.lock();\n\
             drop(b);\n\
             drop(a);\n\
         }\n",
    );
    assert_eq!(fx.lints(), Vec::<String>::new());
}

#[test]
fn nested_acquisition_fires_lock_nested() {
    let fx = Fixture::new("lock-nested-fires");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/demo/src/util.rs",
        "//! Utilities.\n\
         pub fn both() {\n\
             let a = A.lock();\n\
             let b = B.lock();\n\
             drop(b);\n\
             drop(a);\n\
         }\n",
    );
    assert_eq!(fx.lints(), vec!["lock-nested"]);
}

#[test]
fn sequential_acquisition_does_not_fire() {
    let fx = Fixture::new("lock-nested-clean");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/demo/src/util.rs",
        "//! Utilities.\n\
         pub fn one_then_other() {\n\
             let a = A.lock();\n\
             drop(a);\n\
             let b = B.lock();\n\
             drop(b);\n\
         }\n",
    );
    assert_eq!(fx.lints(), Vec::<String>::new());
}

/// The naive shared-registry shape: one lock around the whole request, so
/// the guard is live across the snapshot read *and* the parallel batch.
#[test]
fn naive_shared_engine_is_caught() {
    let fx = Fixture::new("naive-registry");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/demo/src/util.rs",
        "//! A registry that holds its lock across I/O and dispatch.\n\
         pub struct Shared { inner: Mutex<Engine> }\n\
         impl Shared {\n\
             fn guard(&self) -> MutexGuard<'_, Engine> {\n\
                 self.inner.lock().unwrap_or_else(|p| p.into_inner())\n\
             }\n\
             pub fn load(&self, path: &str) {\n\
                 let mut g = self.guard();\n\
                 let bytes = std::fs::read(path).unwrap_or_default();\n\
                 g.install(bytes);\n\
             }\n\
             pub fn answer(&self, policy: &ExecPolicy, plan: &Plan) {\n\
                 let g = self.guard();\n\
                 policy.parallel_for(plan, || (), |(), _, range| g.answer(range));\n\
             }\n\
         }\n",
    );
    let lints = fx.lints();
    assert!(lints.contains(&"lock-held-io".to_string()), "{lints:?}");
    assert!(
        lints.contains(&"lock-held-dispatch".to_string()),
        "{lints:?}"
    );
}

/// The disciplined twin — the shape `SharedEngine` uses: I/O completes
/// before the lock, the batch runs on a checked-out handle after the
/// guard is dropped, and the locked sections are bookkeeping-only.
#[test]
fn checkout_publish_shape_is_clean() {
    let fx = Fixture::new("disciplined-registry");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/demo/src/util.rs",
        "//! A registry that keeps I/O and dispatch outside the lock.\n\
         pub struct Shared { inner: Mutex<Engine> }\n\
         impl Shared {\n\
             fn guard(&self) -> MutexGuard<'_, Engine> {\n\
                 self.inner.lock().unwrap_or_else(|p| p.into_inner())\n\
             }\n\
             pub fn load(&self, path: &str) {\n\
                 let bytes = std::fs::read(path).unwrap_or_default();\n\
                 self.guard().install(bytes);\n\
             }\n\
             pub fn answer(&self, policy: &ExecPolicy, plan: &Plan) {\n\
                 let handle = self.guard().checkout();\n\
                 policy.parallel_for(plan, || (), |(), _, range| handle.answer(range));\n\
                 self.guard().settle();\n\
             }\n\
         }\n",
    );
    assert_eq!(fx.lints(), Vec::<String>::new());
}

/// Transitive discipline: the I/O can hide one call deep and the pass
/// still connects the guard to it through the per-crate call graph.
#[test]
fn guard_across_a_helper_that_does_io_is_caught() {
    let fx = Fixture::new("transitive-io");
    fx.write("crates/demo/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/demo/src/util.rs",
        "//! Utilities.\n\
         fn persist(path: &str, bytes: &[u8]) {\n\
             let _ = std::fs::write(path, bytes);\n\
         }\n\
         pub fn save_locked(path: &str) {\n\
             let g = STATE.lock();\n\
             persist(path, g.bytes());\n\
         }\n",
    );
    assert_eq!(fx.lints(), vec!["lock-held-io"]);
}
