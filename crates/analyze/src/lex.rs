//! The Rust lexer underneath every analysis pass.
//!
//! [`lex`] turns a source file into a stream of [`Token`]s whose byte
//! spans *tile* the input exactly: every byte of the file belongs to
//! exactly one token, so `tokens.map(|t| &src[t.start..t.end]).concat()`
//! reproduces the source verbatim (the round-trip property the lexer
//! tests pin). Comments and whitespace are kept as trivia tokens — the
//! allow-directive parser reads comment tokens, and everything else
//! filters down to the significant tokens.
//!
//! The lexer understands the token shapes that used to defeat the old
//! line-blanking scanner: nested block comments, raw strings with any
//! hash depth (`r#".."#`, `br##".."##`), byte strings and byte chars,
//! char literals vs. lifetime ticks, raw identifiers (`r#type`), and
//! float/int literals with suffixes. It is still a lexer, not a parser:
//! macro bodies lex like ordinary code, which is exactly what the policy
//! passes want.

/// The lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of whitespace (may span newlines).
    Whitespace,
    /// A `//`-style comment up to (not including) the newline. Doc
    /// comments (`///`, `//!`) are line comments whose text says so.
    LineComment,
    /// A `/* ... */` comment, nesting handled; may span lines.
    BlockComment,
    /// An identifier or keyword; raw identifiers (`r#type`) keep their
    /// `r#` prefix in the token text.
    Ident,
    /// A lifetime tick such as `'a` (not a char literal).
    Lifetime,
    /// An integer or float literal, suffix included (`1_000u64`, `2.5e-3`).
    Number,
    /// A `"..."` or `b"..."` string literal, escapes handled.
    Str,
    /// A raw string literal (`r".."`, `r#".."#`, `br".."`, any hash depth).
    RawStr,
    /// A char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// A single punctuation byte (`.`, `:`, `+`, `{`, ...). Multi-byte
    /// operators arrive as consecutive `Punct` tokens.
    Punct(u8),
    /// Any byte the lexer does not classify (stray non-ASCII outside
    /// literals, for instance). Kept so spans still tile the file.
    Unknown,
}

/// One lexed token: kind plus the byte span and 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line number of the token's first byte.
    pub line: u32,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// True for bytes that may start an identifier.
fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

/// True for bytes that may continue an identifier.
fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a token stream whose spans tile the input.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must always make progress");
            self.out.push(Token {
                kind,
                start,
                end: self.pos,
                line,
            });
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances one byte, tracking line numbers.
    fn bump(&mut self) {
        if self.src[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn next_kind(&mut self) -> TokenKind {
        let b = self.src[self.pos];
        if b.is_ascii_whitespace() {
            while self.peek(0).is_some_and(|c| c.is_ascii_whitespace()) {
                self.bump();
            }
            return TokenKind::Whitespace;
        }
        if b == b'/' && self.peek(1) == Some(b'/') {
            while self.peek(0).is_some_and(|c| c != b'\n') {
                self.bump();
            }
            return TokenKind::LineComment;
        }
        if b == b'/' && self.peek(1) == Some(b'*') {
            self.bump_n(2);
            let mut depth = 1u32;
            while depth > 0 && self.pos < self.src.len() {
                if self.peek(0) == Some(b'*') && self.peek(1) == Some(b'/') {
                    depth -= 1;
                    self.bump_n(2);
                } else if self.peek(0) == Some(b'/') && self.peek(1) == Some(b'*') {
                    depth += 1;
                    self.bump_n(2);
                } else {
                    self.bump();
                }
            }
            return TokenKind::BlockComment;
        }
        if b == b'"' {
            self.bump();
            self.consume_str_body();
            return TokenKind::Str;
        }
        if b == b'\'' {
            if let Some(len) = self.char_literal_len(self.pos) {
                self.bump_n(len);
                return TokenKind::Char;
            }
            // A lifetime tick: `'` then an identifier.
            self.bump();
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
            return TokenKind::Lifetime;
        }
        // Prefixed literals and raw identifiers: r".."/br".."/b".."/b'x'/r#id.
        if b == b'r' || b == b'b' {
            if let Some((hashes, open_len)) = self.raw_string_open(self.pos) {
                self.bump_n(open_len);
                self.consume_raw_str_body(hashes);
                return TokenKind::RawStr;
            }
            if b == b'b' && self.peek(1) == Some(b'"') {
                self.bump_n(2);
                self.consume_str_body();
                return TokenKind::Str;
            }
            if b == b'b' && self.peek(1) == Some(b'\'') {
                if let Some(len) = self.char_literal_len(self.pos + 1) {
                    self.bump_n(1 + len);
                    return TokenKind::Char;
                }
            }
            if b == b'r' && self.peek(1) == Some(b'#') && self.peek(2).is_some_and(is_ident_start) {
                self.bump_n(2);
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                return TokenKind::Ident;
            }
        }
        if is_ident_start(b) {
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
            return TokenKind::Ident;
        }
        if b.is_ascii_digit() {
            self.consume_number();
            return TokenKind::Number;
        }
        if b.is_ascii_punctuation() {
            self.bump();
            return TokenKind::Punct(b);
        }
        self.bump();
        TokenKind::Unknown
    }

    /// Consumes a (non-raw) string body after the opening quote.
    fn consume_str_body(&mut self) {
        while let Some(c) = self.peek(0) {
            if c == b'\\' {
                self.bump();
                if self.peek(0).is_some() {
                    self.bump(); // the escaped byte (may be `"` or `\`)
                }
            } else if c == b'"' {
                self.bump();
                return;
            } else {
                self.bump();
            }
        }
    }

    /// Consumes a raw string body opened with `hashes` hashes.
    fn consume_raw_str_body(&mut self, hashes: u32) {
        let h = hashes as usize;
        while let Some(c) = self.peek(0) {
            if c == b'"' && (1..=h).all(|i| self.peek(i) == Some(b'#')) {
                self.bump_n(1 + h);
                return;
            }
            self.bump();
        }
    }

    /// Consumes an int/float literal with optional exponent and suffix.
    fn consume_number(&mut self) {
        // Leading digits (hex/oct/bin prefixes lex as digit+idents chars).
        while self
            .peek(0)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            // `1e-5` / `2E+3`: the sign belongs to the literal only when a
            // digit follows it.
            let c = self.src[self.pos];
            self.bump();
            if (c == b'e' || c == b'E')
                && self.peek(0).is_some_and(|s| s == b'+' || s == b'-')
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                && self.number_has_dot_or_digits_only()
            {
                self.bump(); // the sign
            }
        }
        // A fractional part: `.` followed by a digit (so `0..n` stays a
        // range, and `1.` followed by a method call stays an int).
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
            {
                let c = self.src[self.pos];
                self.bump();
                if (c == b'e' || c == b'E')
                    && self.peek(0).is_some_and(|s| s == b'+' || s == b'-')
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                {
                    self.bump();
                }
            }
        }
    }

    /// True if the bytes consumed so far for the current number are plain
    /// digits/underscores — guards `0xE-1` (hex arithmetic) against being
    /// read as an exponent.
    fn number_has_dot_or_digits_only(&self) -> bool {
        // Walk back over the current literal; a `0x`/`0o`/`0b` prefix means
        // `e`/`E` is a hex digit, not an exponent marker.
        let mut i = self.pos;
        while i > 0 {
            let c = self.src[i - 1];
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' {
                i -= 1;
            } else {
                break;
            }
        }
        !(self.src[i..self.pos].starts_with(b"0x")
            || self.src[i..self.pos].starts_with(b"0o")
            || self.src[i..self.pos].starts_with(b"0b"))
    }

    /// Recognizes a char literal at byte offset `at` (`'x'`, `'\n'`,
    /// `'\u{1F600}'`); returns its byte length, or `None` for a lifetime.
    fn char_literal_len(&self, at: usize) -> Option<usize> {
        let bytes = &self.src[at..];
        if bytes.first() != Some(&b'\'') {
            return None;
        }
        if bytes.get(1) == Some(&b'\\') {
            // The byte after the backslash is consumed even if it is a
            // quote (`'\''`); the closer is searched from index 3 on.
            for (j, &b) in bytes.iter().enumerate().skip(3).take(12) {
                if b == b'\'' {
                    return Some(j + 1);
                }
            }
            return None;
        }
        // Unescaped: exactly one char (possibly multi-byte) then a quote.
        let s = std::str::from_utf8(bytes).ok()?;
        let mut chars = s.char_indices().skip(1);
        let (_, c) = chars.next()?;
        if c == '\'' {
            return None; // `''` is not a char literal
        }
        let (close_at, close) = chars.next()?;
        (close == '\'').then_some(close_at + 1)
    }

    /// Recognizes a raw-string opener at `at` (`r`, `br`, hashes, `"`);
    /// returns (hash count, opener byte length).
    fn raw_string_open(&self, at: usize) -> Option<(u32, usize)> {
        let bytes = &self.src[at..];
        let mut i = 0usize;
        if bytes.first() == Some(&b'b') {
            i += 1;
        }
        if bytes.get(i) != Some(&b'r') {
            return None;
        }
        i += 1;
        let mut hashes = 0u32;
        while bytes.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
        if bytes.get(i) == Some(&b'"') {
            Some((hashes, i + 1))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> Vec<Token> {
        let tokens = lex(src);
        let rebuilt: String = tokens.iter().map(|t| t.text(src)).collect();
        assert_eq!(rebuilt, src, "token spans must tile the source");
        for w in tokens.windows(2) {
            assert_eq!(w[0].end, w[1].start, "spans must be contiguous");
        }
        tokens
    }

    fn kinds(src: &str) -> Vec<TokenKind> {
        roundtrip(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn idents_keywords_and_punct() {
        let ts = kinds("fn f(x: u32) -> usize { x as usize }");
        assert_eq!(ts[0], TokenKind::Ident);
        assert!(ts.contains(&TokenKind::Punct(b'{')));
        assert!(ts.contains(&TokenKind::Punct(b'>')));
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = "let s = \"panic! .unwrap() as u32\"; let t = 1;";
        let ts = roundtrip(src);
        let strs: Vec<_> = ts.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text(src).contains("panic!"));
        // No Ident token carries the string's words.
        assert!(!ts
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text(src) == "unwrap"));
    }

    #[test]
    fn raw_strings_and_escapes() {
        roundtrip("let a = r#\"quote \" inside .unwrap()\"#;");
        roundtrip("let b = \"esc \\\" .expect(\";");
        roundtrip("let c = br##\"double ## hash\"##;");
        let ts = lex("r#\"x\"# y");
        assert_eq!(ts[0].kind, TokenKind::RawStr);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = '\\''; let d = 'x'; let e = b'z'; }";
        let ts = roundtrip(src);
        let lifetimes = ts.iter().filter(|t| t.kind == TokenKind::Lifetime).count();
        let chars = ts.iter().filter(|t| t.kind == TokenKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 3);
    }

    #[test]
    fn raw_identifiers_lex_whole() {
        let src = "let r#type = 1; r#type.lock();";
        let ts = roundtrip(src);
        let raws: Vec<_> = ts
            .iter()
            .filter(|t| t.kind == TokenKind::Ident && t.text(src) == "r#type")
            .collect();
        assert_eq!(raws.len(), 2);
    }

    #[test]
    fn numbers_with_suffixes_ranges_and_exponents() {
        let src = "let a = 1_000u64; let b = 2.5e-3; for i in 0..n {} let c = 0xE; let d = 1.0;";
        let ts = roundtrip(src);
        let nums: Vec<&str> = ts
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(nums, vec!["1_000u64", "2.5e-3", "0", "0xE", "1.0"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* one /* two */ still */ let x = 3;";
        let ts = roundtrip(src);
        assert_eq!(ts[0].kind, TokenKind::BlockComment);
        assert!(ts[0].text(src).ends_with("still */"));
    }

    #[test]
    fn line_numbers_are_tracked() {
        let src = "a\nb\n  c";
        let ts = lex(src);
        let by_text: Vec<(String, u32)> = ts
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| (t.text(src).to_string(), t.line))
            .collect();
        assert_eq!(
            by_text,
            vec![("a".into(), 1), ("b".into(), 2), ("c".into(), 3)]
        );
    }

    #[test]
    fn unterminated_forms_still_tile() {
        for src in [
            "let s = \"unterminated",
            "let s = r#\"open",
            "/* never closed",
            "'",
        ] {
            roundtrip(src);
        }
    }
}
