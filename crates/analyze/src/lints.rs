//! The policy lints and their evaluation over a [`FileModel`].
//!
//! The lints encode the workspace contract (see `DESIGN.md` §"Lint
//! policy"):
//!
//! | lint | rule |
//! |------|------|
//! | `forbid-unsafe` | every crate root carries `#![forbid(unsafe_code)]` |
//! | `no-unwrap` | no `.unwrap()` / `.expect(` outside `#[cfg(test)]` |
//! | `no-panic` | no `panic!` / `todo!` / `unimplemented!` outside `#[cfg(test)]` |
//! | `no-raw-cast` | no truncating `as u8/u16/u32/i8/i16/i32/VertexId` outside the blessed `cast` module |
//! | `no-raw-thread` | no `thread::spawn` / `thread::scope` outside `crates/exec` (the policed scheduling seam) |
//! | `no-raw-net` | no `std::net` sockets outside `crates/engine` (the policed serving seam) |
//! | `no-raw-failpoint` | no `install_plan(`/`clear_plan(` outside `crates/faults` (fault sites go through the `bestk_faults` facade) |
//! | `no-raw-instant` | no `Instant::now(` outside `crates/obs` (timing goes through the injectable `bestk_obs` clock) |
//! | `no-raw-graph` | no `.offsets()`/`.raw_neighbors()`/`CsrGraph::from_parts` outside `crates/graph` (graphs are observed through `GraphView`) |
//! | `no-raw-mutation` | no `DeltaOverlay`/`DeltaLog` outside `crates/delta` and `crates/engine` (mutations go through the engine's stage/commit protocol) |
//! | `no-raw-corpus-io` | no `Recording`/`decode_recording` outside `crates/engine` and `crates/fuzz` (corpus and `.bestkrec` files decode behind the policed seams) |
//! | `no-raw-peel` | no degree-bucket pops or degree-slot decrements outside `crates/core` (peeling goes through `bestk_core`'s `PeelStrategy`) |
//! | `module-doc` | every source file opens with a `//!` module doc |
//!
//! The deeper analysis families — lock discipline, determinism, hot-path
//! arithmetic — live in [`crate::passes`] and [`crate::facts`]; this
//! module holds the single-token-sequence lints plus the lint registry
//! (`LINTS`) every pass shares.
//!
//! Suppressions are explicit and carry a reason:
//!
//! * `// bestk-analyze: allow(<lint>) — <reason>` on the offending line or
//!   the line directly above it;
//! * `bestk-analyze: allow-file(<lint>) — <reason>` anywhere in the file
//!   (conventionally in the module doc) for file-wide exemptions.
//!
//! A suppression without a reason is itself a violation (`bad-allow`).
//!
//! bestk-analyze: allow-file(bad-allow) — these docs quote the directive syntax

use crate::model::FileModel;
use crate::report::Diagnostic;

/// Stable lint identifiers (the names used in allow comments).
pub const LINTS: &[(&str, &str)] = &[
    (
        "forbid-unsafe",
        "crate roots must declare #![forbid(unsafe_code)]",
    ),
    (
        "no-unwrap",
        "no .unwrap()/.expect() in non-test code; propagate errors or document",
    ),
    (
        "no-panic",
        "no panic!/todo!/unimplemented! in non-test code",
    ),
    (
        "no-raw-cast",
        "no truncating `as` casts outside the blessed cast module",
    ),
    (
        "no-raw-thread",
        "no thread::spawn/thread::scope outside crates/exec; use bestk_exec::ExecPolicy",
    ),
    (
        "no-raw-net",
        "no std::net sockets outside crates/engine; route serving through bestk_engine::serve",
    ),
    (
        "no-raw-failpoint",
        "no install_plan/clear_plan outside crates/faults; inject via the bestk_faults helpers",
    ),
    (
        "no-raw-instant",
        "no std::time::Instant::now outside crates/obs; read time through the bestk_obs clock",
    ),
    (
        "no-raw-graph",
        "no CsrGraph internals (.offsets()/.raw_neighbors()/from_parts) outside crates/graph; observe graphs through GraphView",
    ),
    (
        "no-raw-mutation",
        "no DeltaOverlay/DeltaLog outside crates/delta and crates/engine; mutate through SharedEngine::stage_edge/commit_edges",
    ),
    (
        "no-raw-corpus-io",
        "no Recording/decode_recording outside crates/engine and crates/fuzz; replay recordings via bestk_engine::replay_recording_path",
    ),
    (
        "no-raw-peel",
        "no degree-bucket pops or degree-slot writes outside crates/core; peel through bestk_core's PeelStrategy",
    ),
    (
        "module-doc",
        "every source file opens with a //! module doc",
    ),
    (
        "bad-allow",
        "allow comments must name a known lint and give a reason",
    ),
    (
        "lock-order",
        "mutex acquisition order forms a cycle across the workspace (potential deadlock)",
    ),
    (
        "lock-nested",
        "lock acquired while another guard is live; scope the first guard tighter or document the order",
    ),
    (
        "lock-held-io",
        "lock guard held across file/network I/O; move the I/O outside the critical section",
    ),
    (
        "lock-held-dispatch",
        "lock guard held across bestk_exec dispatch; release the guard before fanning out",
    ),
    (
        "nondet-iter",
        "iteration over HashMap/HashSet in non-test code; use BTreeMap/BTreeSet or sort before use",
    ),
    (
        "float-reduce",
        "unordered float accumulation outside bestk-exec's ordered merge; reduce in a fixed order",
    ),
    (
        "raw-atomic",
        "raw atomics outside crates/obs and crates/exec; route through the policed seams or document the invariant",
    ),
    (
        "unchecked-arith",
        "unchecked add/sub/mul on degree/offset/budget values in a hot crate; use checked_/wrapping_/saturating_ or document overflow-freedom",
    ),
];

/// True if `name` is a known lint id.
pub fn is_known_lint(name: &str) -> bool {
    LINTS.iter().any(|(id, _)| *id == name)
}

/// The truncating cast targets `no-raw-cast` rejects. `as usize`/`as u64`
/// widen on every supported target when the source is a `u32` vertex id —
/// the dominant cast direction in this workspace — so they stay legal;
/// the narrowing direction must go through `bestk_graph::cast`.
const NARROWING_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "VertexId"];

/// Role of a file within its crate, which decides lint applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// `src/lib.rs` or `src/main.rs`: a crate root (gets `forbid-unsafe`).
    CrateRoot,
    /// The blessed checked-cast module (`cast.rs`): exempt from
    /// `no-raw-cast` — it is where the casts are supposed to live.
    CastModule,
    /// Any other library source file.
    Library,
}

/// Classifies a path inside a crate's `src/` tree.
pub fn classify(path: &str) -> FileRole {
    let file = path.rsplit('/').next().unwrap_or(path);
    if path.ends_with("src/lib.rs") || path.ends_with("src/main.rs") {
        FileRole::CrateRoot
    } else if file == "cast.rs" {
        FileRole::CastModule
    } else {
        FileRole::Library
    }
}

/// Runs the pattern lints over one file. `path` is the repo-relative path
/// used in diagnostics; `role` comes from [`classify`]. Parses the file
/// itself — the workspace driver parses once and calls [`check_model`].
pub fn check_file(path: &str, role: FileRole, text: &str) -> Vec<Diagnostic> {
    let model = FileModel::parse(text);
    check_model(path, role, &model)
}

/// Runs the pattern lints over an already-parsed [`FileModel`].
pub fn check_model(path: &str, role: FileRole, m: &FileModel<'_>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // Malformed allow directives, unless the file exempts documentation
    // that *quotes* the directive syntax (this crate's own docs, notably).
    if !m.allows.allowed_file_wide("bad-allow") {
        for (line, msg) in &m.bad_allows {
            diags.push(Diagnostic::new(
                path,
                *line as usize,
                "bad-allow",
                msg.clone(),
            ));
        }
    }

    // module-doc: the first lines of the file must include a `//!` doc.
    if (role != FileRole::CrateRoot || !m.src.is_empty())
        && !m.has_module_doc
        && !m.allows.allowed_file_wide("module-doc")
    {
        diags.push(Diagnostic::new(
            path,
            1,
            "module-doc",
            "file has no `//!` module documentation".to_string(),
        ));
    }

    // forbid-unsafe: crate roots must carry the inner attribute.
    if role == FileRole::CrateRoot
        && !has_forbid_unsafe(m)
        && !m.allows.allowed_file_wide("forbid-unsafe")
    {
        diags.push(Diagnostic::new(
            path,
            1,
            "forbid-unsafe",
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        ));
    }

    // `crates/exec` is the one place allowed to touch OS threads: every
    // other crate must route parallelism through its `ExecPolicy` runtime.
    let exec_exempt = path.starts_with("crates/exec/");
    // `crates/engine` is likewise the one place allowed to open sockets:
    // its serving loop is the policed network seam.
    let net_exempt = path.starts_with("crates/engine/");
    // `crates/faults` owns the global fault-plan state: production code
    // elsewhere must use the `bestk_faults` injection helpers (`io_error`,
    // `maybe_panic`, ...), never install or clear plans itself.
    let failpoint_exempt = path.starts_with("crates/faults/");
    // `crates/obs` owns the injectable clock: its `SystemClock` is the one
    // place allowed to read `Instant::now` directly, so every other timing
    // read stays swappable for the deterministic manual clock.
    let instant_exempt = path.starts_with("crates/obs/");
    // `crates/graph` owns the CSR representation: everywhere else observes
    // graphs through the `GraphView` trait so storage backends (succinct,
    // mapped snapshots) stay swappable without touching consumers.
    let graph_exempt = path.starts_with("crates/graph/");
    // `crates/delta` defines the raw mutation primitives and
    // `crates/engine` is the one consumer allowed to drive them: everyone
    // else mutates through the engine's stage → commit protocol, which is
    // what makes mutations validated, write-ahead-logged, and durable.
    let mutation_exempt = path.starts_with("crates/delta/") || path.starts_with("crates/engine/");
    // `crates/engine` owns the `.bestkrec` recording format and
    // `crates/fuzz` owns the corpus checkers: everywhere else replays
    // recordings through `bestk_engine::replay_recording_path`, so decode
    // hardening (checksums, framing, typed errors) cannot be bypassed.
    let corpus_exempt = path.starts_with("crates/engine/") || path.starts_with("crates/fuzz/");
    // `crates/core` owns the peel: its two strategies (sequential oracle,
    // parallel bucket-frontier primary) are the one place allowed to pop
    // degree buckets and write degree slots, because that is the machinery
    // the differential test layer proves bit-identical. A peel hand-rolled
    // anywhere else silently escapes that proof.
    let peel_exempt = path.starts_with("crates/core/");

    let mut push = |lint: &'static str, line: u32, msg: String| {
        diags.push(Diagnostic::new(path, line as usize, lint, msg));
    };

    for i in 0..m.len() {
        if m.sig_in_test(i) {
            continue;
        }
        let line = m.line(i);
        let allowed = |lint: &str| m.allows.allowed(lint, line);

        // `.unwrap()` / `.expect(` method calls.
        if m.is_punct(i, b'.') && m.is_punct(i + 2, b'(') {
            let what = match m.ident(i + 1) {
                Some("unwrap") => Some("`.unwrap()`"),
                Some("expect") => Some("`.expect()`"),
                _ => None,
            };
            if let Some(what) = what {
                if !allowed("no-unwrap") {
                    push("no-unwrap", line, format!(
                        "{what} in non-test code (propagate the error or add an allow comment with a reason)"
                    ));
                }
            }
        }

        // `panic!` / `todo!` / `unimplemented!` macro invocations.
        if m.is_punct(i + 1, b'!') {
            let what = match m.ident(i) {
                Some("panic") => Some("`panic!`"),
                Some("todo") => Some("`todo!`"),
                Some("unimplemented") => Some("`unimplemented!`"),
                _ => None,
            };
            if let Some(what) = what {
                if !allowed("no-panic") {
                    push("no-panic", line, format!(
                        "{what} in non-test code (propagate the error or add an allow comment with a reason)"
                    ));
                }
            }
        }

        // `thread::spawn(` / `thread::scope(`.
        if !exec_exempt
            && m.is_ident(i, "thread")
            && m.is_punct(i + 1, b':')
            && m.is_punct(i + 2, b':')
            && m.is_punct(i + 4, b'(')
        {
            let what = match m.ident(i + 3) {
                Some("spawn") => Some("`thread::spawn`"),
                Some("scope") => Some("`thread::scope`"),
                _ => None,
            };
            if let Some(what) = what {
                if !allowed("no-raw-thread") {
                    push("no-raw-thread", line, format!(
                        "{what} outside crates/exec (route parallelism through bestk_exec::ExecPolicy)"
                    ));
                }
            }
        }

        // `std::net` paths and the socket type names themselves.
        if !net_exempt && !allowed("no-raw-net") {
            if m.is_ident(i, "std")
                && m.is_punct(i + 1, b':')
                && m.is_punct(i + 2, b':')
                && m.is_ident(i + 3, "net")
            {
                push(
                    "no-raw-net",
                    line,
                    "`std::net` outside crates/engine (route serving through bestk_engine::serve)"
                        .to_string(),
                );
            }
            if let Some(name @ ("TcpListener" | "TcpStream")) = m.ident(i) {
                push(
                    "no-raw-net",
                    line,
                    format!(
                    "`{name}` outside crates/engine (route serving through bestk_engine::serve)"
                ),
                );
            }
        }

        // `install_plan(` / `clear_plan(`.
        if !failpoint_exempt && m.is_punct(i + 1, b'(') {
            if let Some(name @ ("install_plan" | "clear_plan")) = m.ident(i) {
                if !allowed("no-raw-failpoint") {
                    push("no-raw-failpoint", line, format!(
                        "`{name}` outside crates/faults (inject faults via the bestk_faults helpers)"
                    ));
                }
            }
        }

        // `Instant::now(`.
        if !instant_exempt
            && m.is_ident(i, "Instant")
            && m.is_punct(i + 1, b':')
            && m.is_punct(i + 2, b':')
            && m.is_ident(i + 3, "now")
            && m.is_punct(i + 4, b'(')
            && !allowed("no-raw-instant")
        {
            push(
                "no-raw-instant",
                line,
                "`Instant::now` outside crates/obs (read time through the bestk_obs clock)"
                    .to_string(),
            );
        }

        // Raw CSR internals: the `.offsets()` / `.raw_neighbors()`
        // accessors and the `CsrGraph::from_parts` constructors.
        if !graph_exempt {
            if m.is_punct(i, b'.') && m.is_punct(i + 2, b'(') {
                if let Some(name @ ("offsets" | "raw_neighbors")) = m.ident(i + 1) {
                    if !allowed("no-raw-graph") {
                        push("no-raw-graph", line, format!(
                            "`.{name}()` outside crates/graph (observe graphs through the GraphView trait)"
                        ));
                    }
                }
            }
            if m.is_ident(i, "CsrGraph")
                && m.is_punct(i + 1, b':')
                && m.is_punct(i + 2, b':')
                && m.is_punct(i + 4, b'(')
            {
                if let Some(name @ ("from_parts" | "try_from_parts")) = m.ident(i + 3) {
                    if !allowed("no-raw-graph") {
                        push("no-raw-graph", line, format!(
                            "`CsrGraph::{name}` outside crates/graph (build graphs via GraphBuilder or the blessed deserializers)"
                        ));
                    }
                }
            }
        }

        // The raw delta mutation primitives, by type name (any mention —
        // import, construction, signature — couples the file to the
        // unpoliced mutation path).
        if !mutation_exempt && !allowed("no-raw-mutation") {
            if let Some(name @ ("DeltaOverlay" | "DeltaLog")) = m.ident(i) {
                push(
                    "no-raw-mutation",
                    line,
                    format!(
                        "`{name}` outside crates/delta and crates/engine (mutate through SharedEngine::stage_edge/commit_edges)"
                    ),
                );
            }
        }

        // The recording/corpus decode surface, by name (any mention —
        // import, construction, signature — couples the file to the raw
        // byte-level decode path).
        if !corpus_exempt && !allowed("no-raw-corpus-io") {
            if let Some(name @ ("Recording" | "decode_recording")) = m.ident(i) {
                push(
                    "no-raw-corpus-io",
                    line,
                    format!(
                        "`{name}` outside crates/engine and crates/fuzz (replay recordings via bestk_engine::replay_recording_path)"
                    ),
                );
            }
        }

        // Hand-rolled peel machinery: a `.pop()`/`.swap_remove()` on a
        // bucket-named receiver, or a write (`=` / `-=`) into a
        // degree-named slot — the two moves every bucket-peel loop is
        // made of.
        if !peel_exempt {
            if m.is_punct(i, b'.') && m.is_punct(i + 2, b'(') {
                if let Some(name @ ("pop" | "swap_remove")) = m.ident(i + 1) {
                    let near_bucket = (i.saturating_sub(6)..i).any(|j| {
                        m.ident(j)
                            .is_some_and(|id| id.to_ascii_lowercase().contains("bucket"))
                    });
                    if near_bucket && !allowed("no-raw-peel") {
                        push("no-raw-peel", line, format!(
                            "`.{name}()` on a degree bucket outside crates/core (peel through bestk_core's PeelStrategy)"
                        ));
                    }
                }
            }
            if m.ident(i)
                .is_some_and(|id| id.to_ascii_lowercase().contains("deg"))
                && m.is_punct(i + 1, b'[')
            {
                // Find the closing bracket of a simple index expression; a
                // write into the slot is `] =` (not `==`) or `] -=`.
                let mut j = i + 2;
                let end = (i + 12).min(m.len());
                while j < end && !m.is_punct(j, b']') {
                    j += 1;
                }
                let is_store = m.is_punct(j, b']')
                    && ((m.is_punct(j + 1, b'=') && !m.is_punct(j + 2, b'='))
                        || (m.is_punct(j + 1, b'-') && m.is_punct(j + 2, b'=')));
                if is_store && !allowed("no-raw-peel") {
                    push("no-raw-peel", line, format!(
                        "write into degree slot `{}[…]` outside crates/core (peel through bestk_core's PeelStrategy)",
                        m.ident(i).unwrap_or("deg")
                    ));
                }
            }
        }

        // Truncating `as` casts.
        if role != FileRole::CastModule && m.is_ident(i, "as") {
            if let Some(target) = m.ident(i + 1) {
                if NARROWING_TARGETS.contains(&target) && !allowed("no-raw-cast") {
                    push(
                        "no-raw-cast",
                        line,
                        format!("truncating `as {target}` cast (use bestk_graph::cast helpers)"),
                    );
                }
            }
        }
    }
    diags
}

/// True when the significant token stream contains `#![forbid(unsafe_code)]`.
fn has_forbid_unsafe(m: &FileModel<'_>) -> bool {
    (0..m.len()).any(|i| {
        m.is_punct(i, b'#')
            && m.is_punct(i + 1, b'!')
            && m.is_punct(i + 2, b'[')
            && m.is_ident(i + 3, "forbid")
            && m.is_punct(i + 4, b'(')
            && m.is_ident(i + 5, "unsafe_code")
            && m.is_punct(i + 6, b')')
            && m.is_punct(i + 7, b']')
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lints_of(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.lint).collect()
    }

    const DOC: &str = "//! Docs.\n";

    #[test]
    fn clean_file_passes() {
        let src = format!("{DOC}pub fn f(x: u32) -> usize {{ x as usize }}\n");
        assert!(check_file("a.rs", FileRole::Library, &src).is_empty());
    }

    #[test]
    fn unwrap_in_library_code_fires() {
        let src = format!("{DOC}fn f() {{ let x: Option<u8> = None; x.unwrap(); }}\n");
        let d = check_file("a.rs", FileRole::Library, &src);
        assert_eq!(lints_of(&d), vec!["no-unwrap"]);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn unwrap_in_test_module_is_fine() {
        let src =
            format!("{DOC}#[cfg(test)]\nmod tests {{\n    fn t() {{ None::<u8>.unwrap(); }}\n}}\n");
        assert!(check_file("a.rs", FileRole::Library, &src).is_empty());
    }

    #[test]
    fn unwrap_in_string_or_comment_is_fine() {
        let src = format!("{DOC}// .unwrap() here\nlet s = \".unwrap()\";\n");
        assert!(check_file("a.rs", FileRole::Library, &src).is_empty());
    }

    #[test]
    fn unwrap_in_raw_string_is_fine() {
        // The old line-blanking scanner special-cased this; the lexer gets
        // it for free, hash depth and all.
        let src = format!("{DOC}let s = r#\"x.unwrap() and panic!\"#;\nlet t = br\"todo!()\";\n");
        assert!(check_file("a.rs", FileRole::Library, &src).is_empty());
    }

    #[test]
    fn allow_comment_with_reason_suppresses() {
        let src = format!(
            "{DOC}// bestk-analyze: allow(no-unwrap) — mutex poisoning is fatal by design\nlock.lock().unwrap();\n"
        );
        assert!(check_file("a.rs", FileRole::Library, &src).is_empty());
        let trailing = format!(
            "{DOC}lock.lock().unwrap(); // bestk-analyze: allow(no-unwrap) — poisoning is fatal\n"
        );
        assert!(check_file("a.rs", FileRole::Library, &trailing).is_empty());
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let src = format!("{DOC}// bestk-analyze: allow(no-unwrap)\nx.unwrap();\n");
        let d = check_file("a.rs", FileRole::Library, &src);
        assert!(lints_of(&d).contains(&"bad-allow"), "{d:?}");
    }

    #[test]
    fn allow_unknown_lint_is_rejected() {
        let src = format!("{DOC}// bestk-analyze: allow(no-such) — whatever reason\n");
        let d = check_file("a.rs", FileRole::Library, &src);
        assert_eq!(lints_of(&d), vec!["bad-allow"]);
    }

    #[test]
    fn panic_family_fires() {
        let src = format!("{DOC}fn f() {{ panic!(\"x\"); }}\nfn g() {{ todo!() }}\n");
        let d = check_file("a.rs", FileRole::Library, &src);
        assert_eq!(lints_of(&d), vec!["no-panic", "no-panic"]);
    }

    #[test]
    fn narrowing_casts_fire_and_widening_do_not() {
        let src = format!("{DOC}let a = x as u32;\nlet b = x as usize;\nlet c = x as u64;\n");
        let d = check_file("a.rs", FileRole::Library, &src);
        assert_eq!(lints_of(&d), vec!["no-raw-cast"]);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn cast_module_is_blessed() {
        let src = format!("{DOC}pub fn vertex_id(i: usize) -> u32 {{ i as u32 }}\n");
        assert!(check_file("crates/graph/src/cast.rs", FileRole::CastModule, &src).is_empty());
    }

    #[test]
    fn word_boundaries_respected() {
        let src = format!("{DOC}let a = x as u64;\nlet b = y as usize;\nlet c = alias_u32;\n");
        assert!(check_file("a.rs", FileRole::Library, &src).is_empty());
    }

    #[test]
    fn raw_thread_outside_exec_fires() {
        let src = format!("{DOC}fn f() {{ std::thread::spawn(|| ()); }}\n");
        let d = check_file("crates/core/src/x.rs", FileRole::Library, &src);
        assert_eq!(lints_of(&d), vec!["no-raw-thread"]);
        assert_eq!(d[0].line, 2);
        let src = format!("{DOC}fn f() {{ std::thread::scope(|s| {{ let _ = s; }}); }}\n");
        let d = check_file("crates/core/src/x.rs", FileRole::Library, &src);
        assert_eq!(lints_of(&d), vec!["no-raw-thread"]);
    }

    #[test]
    fn raw_thread_inside_exec_is_blessed() {
        let src = format!("{DOC}fn f() {{ std::thread::scope(|s| {{ let _ = s; }}); }}\n");
        assert!(check_file("crates/exec/src/runtime.rs", FileRole::Library, &src).is_empty());
    }

    #[test]
    fn raw_thread_in_test_code_or_strings_is_fine() {
        let src = format!(
            "{DOC}// thread::spawn( in a comment\nlet s = \"thread::scope(\";\n\
             #[cfg(test)]\nmod tests {{\n    fn t() {{ std::thread::spawn(|| ()); }}\n}}\n"
        );
        assert!(check_file("crates/core/src/x.rs", FileRole::Library, &src).is_empty());
    }

    #[test]
    fn raw_peel_outside_core_fires() {
        for bad in [
            "fn f(buckets: &mut Vec<Vec<u32>>, k: usize) { buckets[k].pop(); }",
            "fn f(bucket_q: &mut Vec<u32>) { bucket_q.swap_remove(0); }",
            "fn f(degree: &mut [u32], u: usize) { degree[u] -= 1; }",
            "fn f(deg: &mut [u32], u: usize) { deg[u] = 0; }",
        ] {
            let src = format!("{DOC}{bad}\n");
            let d = check_file("crates/apps/src/densest.rs", FileRole::Library, &src);
            assert_eq!(lints_of(&d), vec!["no-raw-peel"], "{bad:?}");
            assert_eq!(d[0].line, 2);
        }
    }

    #[test]
    fn raw_peel_inside_core_is_blessed() {
        let src = format!(
            "{DOC}fn f(buckets: &mut Vec<Vec<u32>>, degree: &mut [u32], k: usize) {{\n\
             \x20   buckets[k].pop();\n    degree[k] -= 1;\n}}\n"
        );
        assert!(check_file("crates/core/src/decomposition.rs", FileRole::Library, &src).is_empty());
    }

    #[test]
    fn degree_reads_compares_and_plain_pops_are_fine() {
        // Reads, comparisons, and pops on non-bucket receivers are not
        // peel machinery.
        let src = format!(
            "{DOC}fn f(degree: &[u32], u: usize, k: u32) -> bool {{ degree[u] == k || degree[u] >= k }}\n\
             fn g(degree: &[u32], u: usize) -> u32 {{ degree[u] - 1 }}\n\
             fn h(stack: &mut Vec<u32>) {{ stack.pop(); }}\n"
        );
        assert!(check_file("crates/apps/src/x.rs", FileRole::Library, &src).is_empty());
    }

    #[test]
    fn raw_peel_in_test_code_or_allowed_lines_is_fine() {
        let src = format!(
            "{DOC}// buckets[k].pop() in a comment\n\
             #[cfg(test)]\nmod tests {{\n    fn t(deg: &mut [u32]) {{ deg[0] -= 1; }}\n}}\n"
        );
        assert!(check_file("crates/apps/src/x.rs", FileRole::Library, &src).is_empty());
        let src = format!(
            "{DOC}// bestk-analyze: allow(no-raw-peel) — Charikar peel, not a core decomposition\nbuckets[cur_min].pop();\n"
        );
        assert!(check_file("crates/apps/src/x.rs", FileRole::Library, &src).is_empty());
    }

    #[test]
    fn raw_net_outside_engine_fires() {
        for bad in [
            "fn f() { let _ = std::net::TcpListener::bind(\"127.0.0.1:0\"); }",
            "use std::net::SocketAddr;",
            "fn f(s: TcpStream) { let _ = s; }",
        ] {
            let src = format!("{DOC}{bad}\n");
            let d = check_file("crates/cli/src/commands.rs", FileRole::Library, &src);
            assert!(lints_of(&d).contains(&"no-raw-net"), "{bad:?} -> {d:?}");
            assert_eq!(d[0].line, 2);
        }
    }

    #[test]
    fn raw_net_inside_engine_is_blessed() {
        let src = format!("{DOC}use std::net::TcpListener;\nfn f(s: TcpStream) {{ let _ = s; }}\n");
        assert!(check_file("crates/engine/src/serve.rs", FileRole::Library, &src).is_empty());
    }

    #[test]
    fn raw_net_in_test_code_strings_or_allowed_lines_is_fine() {
        let src = format!(
            "{DOC}// std::net in a comment\nlet s = \"TcpListener\";\n\
             #[cfg(test)]\nmod tests {{\n    use std::net::TcpStream;\n}}\n"
        );
        assert!(check_file("crates/core/src/x.rs", FileRole::Library, &src).is_empty());
        let src = format!(
            "{DOC}// bestk-analyze: allow(no-raw-net) — diagnostic-only socket probe\nuse std::net::SocketAddr;\n"
        );
        assert!(check_file("crates/core/src/x.rs", FileRole::Library, &src).is_empty());
    }

    #[test]
    fn raw_failpoint_outside_faults_fires() {
        for bad in [
            "fn f() { bestk_faults::install_plan(&plan); }",
            "fn f() { bestk_faults::clear_plan(); }",
        ] {
            let src = format!("{DOC}{bad}\n");
            let d = check_file("crates/engine/src/serve.rs", FileRole::Library, &src);
            assert_eq!(lints_of(&d), vec!["no-raw-failpoint"], "{bad:?}");
            assert_eq!(d[0].line, 2);
        }
    }

    #[test]
    fn raw_failpoint_inside_faults_is_blessed() {
        let src =
            format!("{DOC}pub fn with_plan(p: &FaultPlan) {{ install_plan(p); clear_plan(); }}\n");
        assert!(check_file("crates/faults/src/state.rs", FileRole::Library, &src).is_empty());
    }

    #[test]
    fn raw_failpoint_in_test_code_or_allowed_lines_is_fine() {
        let src = format!(
            "{DOC}// install_plan( in a comment\n\
             #[cfg(test)]\nmod tests {{\n    fn t() {{ bestk_faults::clear_plan(); }}\n}}\n"
        );
        assert!(check_file("crates/core/src/x.rs", FileRole::Library, &src).is_empty());
        let src = format!(
            "{DOC}// bestk-analyze: allow(no-raw-failpoint) — CLI boot is the blessed env entry point\nbestk_faults::install_plan(&plan);\n"
        );
        assert!(check_file("crates/cli/src/main.rs", FileRole::Library, &src).is_empty());
    }

    #[test]
    fn raw_instant_outside_obs_fires() {
        for bad in [
            "fn f() { let t = std::time::Instant::now(); }",
            "fn f() { let t = Instant::now(); }",
        ] {
            let src = format!("{DOC}{bad}\n");
            let d = check_file("crates/engine/src/serve.rs", FileRole::Library, &src);
            assert_eq!(lints_of(&d), vec!["no-raw-instant"], "{bad:?}");
            assert_eq!(d[0].line, 2);
        }
    }

    #[test]
    fn raw_instant_inside_obs_is_blessed() {
        let src = format!("{DOC}fn now() -> Instant {{ std::time::Instant::now() }}\n");
        assert!(check_file("crates/obs/src/clock.rs", FileRole::Library, &src).is_empty());
    }

    #[test]
    fn raw_instant_in_test_code_or_allowed_lines_is_fine() {
        let src = format!(
            "{DOC}// Instant::now( in a comment\n\
             #[cfg(test)]\nmod tests {{\n    fn t() {{ let _ = std::time::Instant::now(); }}\n}}\n"
        );
        assert!(check_file("crates/core/src/x.rs", FileRole::Library, &src).is_empty());
        let src = format!(
            "{DOC}// bestk-analyze: allow(no-raw-instant) — calibrating the clock itself\nlet t = Instant::now();\n"
        );
        assert!(check_file("crates/core/src/x.rs", FileRole::Library, &src).is_empty());
    }

    #[test]
    fn raw_graph_outside_graph_crate_fires() {
        for bad in [
            "fn f(g: &CsrGraph) -> usize { g.offsets()[0] }",
            "fn f(g: &CsrGraph) -> usize { g.raw_neighbors().len() }",
            "fn f() { let _ = CsrGraph::from_parts(vec![0], vec![]); }",
            "fn f() { let _ = CsrGraph::try_from_parts(vec![0], vec![]); }",
        ] {
            let src = format!("{DOC}{bad}\n");
            let d = check_file("crates/engine/src/store.rs", FileRole::Library, &src);
            assert_eq!(lints_of(&d), vec!["no-raw-graph"], "{bad:?}");
            assert_eq!(d[0].line, 2);
        }
    }

    #[test]
    fn raw_graph_inside_graph_crate_is_blessed() {
        let src = format!(
            "{DOC}pub fn copy(g: &CsrGraph) -> CsrGraph {{\n    \
             CsrGraph::from_parts(g.offsets().to_vec(), g.raw_neighbors().to_vec())\n}}\n"
        );
        assert!(check_file("crates/graph/src/transform.rs", FileRole::Library, &src).is_empty());
    }

    #[test]
    fn raw_graph_in_test_code_or_allowed_lines_is_fine() {
        let src = format!(
            "{DOC}// .offsets( in a comment\n\
             #[cfg(test)]\nmod tests {{\n    fn t(g: &CsrGraph) {{ let _ = g.offsets(); }}\n}}\n"
        );
        assert!(check_file("crates/core/src/x.rs", FileRole::Library, &src).is_empty());
        let src = format!(
            "{DOC}// bestk-analyze: allow(no-raw-graph) — CSR fast path, backed by the trait contract\nlet o = g.offsets().to_vec();\n"
        );
        assert!(check_file("crates/core/src/x.rs", FileRole::Library, &src).is_empty());
        // Non-CsrGraph `from_parts` constructors are someone else's business.
        let src = format!("{DOC}let f = CoreForest::from_parts(nodes, vertex_node);\n");
        assert!(check_file("crates/core/src/x.rs", FileRole::Library, &src).is_empty());
    }

    #[test]
    fn raw_mutation_outside_delta_and_engine_fires() {
        for bad in [
            "use bestk_delta::DeltaOverlay;",
            "fn f(g: &CsrGraph) { let _ = DeltaOverlay::new(g); }",
            "fn f() { let _ = DeltaLog::open(\"g.wal\"); }",
            "fn f(log: &mut DeltaLog) { let _ = log; }",
        ] {
            let src = format!("{DOC}{bad}\n");
            let d = check_file("crates/cli/src/commands.rs", FileRole::Library, &src);
            assert_eq!(lints_of(&d), vec!["no-raw-mutation"], "{bad:?}");
            assert_eq!(d[0].line, 2);
        }
    }

    #[test]
    fn raw_mutation_inside_delta_and_engine_is_blessed() {
        let src = format!(
            "{DOC}fn f(g: &CsrGraph) {{\n    let o = DeltaOverlay::new(g);\n    \
             let l = DeltaLog::open(\"g.wal\");\n}}\n"
        );
        assert!(check_file("crates/delta/src/index.rs", FileRole::Library, &src).is_empty());
        assert!(check_file("crates/engine/src/mutate.rs", FileRole::Library, &src).is_empty());
    }

    #[test]
    fn raw_mutation_in_test_code_strings_or_allowed_lines_is_fine() {
        let src = format!(
            "{DOC}// DeltaOverlay in a comment\nlet s = \"DeltaLog\";\n\
             #[cfg(test)]\nmod tests {{\n    use bestk_delta::DeltaOverlay;\n}}\n"
        );
        assert!(check_file("crates/core/src/x.rs", FileRole::Library, &src).is_empty());
        let src = format!(
            "{DOC}// bestk-analyze: allow(no-raw-mutation) — read-only what-if probe, never committed\nlet o = DeltaOverlay::new(&g);\n"
        );
        assert!(check_file("crates/core/src/x.rs", FileRole::Library, &src).is_empty());
        // Other Delta-prefixed names (the index, errors) are not policed.
        let src = format!("{DOC}use bestk_delta::{{DeltaError, DeltaIndex}};\n");
        assert!(check_file("crates/core/src/x.rs", FileRole::Library, &src).is_empty());
    }

    #[test]
    fn raw_corpus_io_outside_engine_and_fuzz_fires() {
        for bad in [
            "use bestk_engine::record::Recording;",
            "fn f(bytes: &[u8]) { let _ = decode_recording(bytes); }",
            "fn f(r: &Recording) { let _ = r; }",
        ] {
            let src = format!("{DOC}{bad}\n");
            let d = check_file("crates/cli/src/commands.rs", FileRole::Library, &src);
            assert_eq!(lints_of(&d), vec!["no-raw-corpus-io"], "{bad:?}");
            assert_eq!(d[0].line, 2);
        }
    }

    #[test]
    fn raw_corpus_io_inside_engine_and_fuzz_is_blessed() {
        let src = format!(
            "{DOC}fn f(bytes: &[u8]) -> Recording {{\n    decode_recording(bytes).unwrap_or_else(|e| panic!(\"{{e}}\"))\n}}\n"
        );
        let d = check_file("crates/engine/src/record.rs", FileRole::Library, &src);
        assert!(!lints_of(&d).contains(&"no-raw-corpus-io"), "{d:?}");
        let d = check_file("crates/fuzz/src/harness.rs", FileRole::Library, &src);
        assert!(!lints_of(&d).contains(&"no-raw-corpus-io"), "{d:?}");
    }

    #[test]
    fn raw_corpus_io_in_test_code_strings_or_allowed_lines_is_fine() {
        let src = format!(
            "{DOC}// decode_recording( in a comment\nlet s = \"Recording\";\n\
             #[cfg(test)]\nmod tests {{\n    use bestk_engine::record::Recording;\n}}\n"
        );
        assert!(check_file("crates/core/src/x.rs", FileRole::Library, &src).is_empty());
        let src = format!(
            "{DOC}// bestk-analyze: allow(no-raw-corpus-io) — offline corpus triage tool\nlet r = decode_recording(&bytes);\n"
        );
        assert!(check_file("crates/core/src/x.rs", FileRole::Library, &src).is_empty());
        // Other recording-ish names (the replay facade) are not policed.
        let src = format!("{DOC}let r = bestk_engine::replay_recording_path(p, &e, &pol);\n");
        assert!(check_file("crates/core/src/x.rs", FileRole::Library, &src).is_empty());
    }

    #[test]
    fn missing_module_doc_fires() {
        let d = check_file("a.rs", FileRole::Library, "fn f() {}\n");
        assert_eq!(lints_of(&d), vec!["module-doc"]);
    }

    #[test]
    fn crate_root_without_forbid_fires() {
        let d = check_file("src/lib.rs", FileRole::CrateRoot, DOC);
        assert_eq!(lints_of(&d), vec!["forbid-unsafe"]);
        let ok = format!("{DOC}#![forbid(unsafe_code)]\n");
        assert!(check_file("src/lib.rs", FileRole::CrateRoot, &ok).is_empty());
    }

    #[test]
    fn classify_roles() {
        assert_eq!(classify("crates/graph/src/lib.rs"), FileRole::CrateRoot);
        assert_eq!(classify("crates/cli/src/main.rs"), FileRole::CrateRoot);
        assert_eq!(classify("crates/graph/src/cast.rs"), FileRole::CastModule);
        assert_eq!(classify("crates/core/src/verify.rs"), FileRole::Library);
    }
}
