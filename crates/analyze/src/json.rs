//! Machine-readable JSON report.
//!
//! Hand-rolled rendering (the workspace is dependency-free) with a
//! deterministic layout: findings sorted by (path, line, lint,
//! fingerprint), summary counts name-sorted, stable key order. Two runs
//! over the same tree produce byte-identical output — CI diffs the
//! artifact and the determinism test asserts it.

use std::collections::BTreeMap;

use crate::report::Diagnostic;

/// Escapes a string for a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out
}

/// Renders the JSON report. `baselined` marks fingerprints covered by the
/// baseline file (empty set when no baseline is in play).
pub fn render(
    diags: &[Diagnostic],
    files_checked: usize,
    baselined: &std::collections::BTreeSet<String>,
) -> String {
    let mut sorted: Vec<&Diagnostic> = diags.iter().collect();
    sorted.sort_by(|a, b| {
        (&a.path, a.line, a.lint, &a.fingerprint).cmp(&(&b.path, b.line, b.lint, &b.fingerprint))
    });
    let mut by_lint: BTreeMap<&str, usize> = BTreeMap::new();
    for d in diags {
        *by_lint.entry(d.lint).or_insert(0) += 1;
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!("  \"files_checked\": {files_checked},\n"));
    out.push_str("  \"findings\": [");
    for (i, d) in sorted.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"fingerprint\": \"{}\", \"lint\": \"{}\", \"path\": \"{}\", \"line\": {}, \"baselined\": {}, \"message\": \"{}\"}}",
            escape(&d.fingerprint),
            escape(d.lint),
            escape(&d.path),
            d.line,
            baselined.contains(&d.fingerprint),
            escape(&d.message),
        ));
    }
    out.push_str(if sorted.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    out.push_str("  \"summary\": {");
    for (i, (lint, count)) in by_lint.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!("    \"{}\": {count}", escape(lint)));
    }
    out.push_str(if by_lint.is_empty() { "}\n" } else { "\n  }\n" });
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn diag(path: &str, line: usize, lint: &'static str, fp: &str) -> Diagnostic {
        let mut d = Diagnostic::new(path, line, lint, "msg \"quoted\"".into());
        d.fingerprint = fp.to_string();
        d
    }

    #[test]
    fn renders_sorted_and_escaped() {
        let diags = vec![
            diag("b.rs", 1, "no-panic", "bbbbbbbbbbbbbbbb"),
            diag("a.rs", 2, "no-unwrap", "aaaaaaaaaaaaaaaa"),
        ];
        let mut base = BTreeSet::new();
        base.insert("aaaaaaaaaaaaaaaa".to_string());
        let j = render(&diags, 2, &base);
        let a_pos = j.find("a.rs").unwrap();
        let b_pos = j.find("b.rs").unwrap();
        assert!(a_pos < b_pos);
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\"baselined\": true"));
        assert!(j.contains("\"baselined\": false"));
        assert!(j.contains("\"no-panic\": 1"));
    }

    #[test]
    fn deterministic() {
        let diags = vec![diag("a.rs", 1, "no-unwrap", "aaaaaaaaaaaaaaaa")];
        let empty = BTreeSet::new();
        assert_eq!(render(&diags, 1, &empty), render(&diags, 1, &empty));
    }

    #[test]
    fn empty_report_shape() {
        let j = render(&[], 5, &BTreeSet::new());
        assert!(j.contains("\"findings\": []"));
        assert!(j.contains("\"summary\": {}"));
    }
}
