//! # bestk-analyze
//!
//! A source-level static-analysis pass that enforces the workspace's
//! reliability contract (`DESIGN.md` §"Lint policy"): crate roots forbid
//! `unsafe`, library code never unwraps or panics, truncating integer
//! casts go through the blessed `bestk_graph::cast` helpers, and every
//! module is documented.
//!
//! It is deliberately *lexical*: [`source::SourceModel`] blanks comments
//! and string literals and tracks `#[cfg(test)]` regions, then
//! [`lints::check_file`] pattern-matches over the surviving code. No
//! `syn`, no rustc internals — the checker builds offline in under a
//! second and its false-positive escape hatch is an explicit, reasoned
//! `// bestk-analyze: allow(<lint>) — <reason>` comment that is itself
//! linted.
//!
//! Run it as `cargo run -p bestk-analyze -- check` (CI does); exit code 0
//! means clean, 1 means violations, 2 means the invocation itself failed.
//!
//! bestk-analyze: allow-file(bad-allow) — these docs quote the directive syntax

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lints;
pub mod report;
pub mod source;
pub mod walk;

use std::io;
use std::path::Path;

pub use report::Diagnostic;

/// Runs the full lint pass over the workspace rooted at `root`.
///
/// Returns the diagnostics plus the number of files checked. Integration
/// tests and benches (`tests/`, `benches/` trees) are held only to the
/// `module-doc` and `bad-allow` rules — they are test code, where unwraps
/// and panics are the assertion mechanism.
pub fn run(root: &Path) -> io::Result<(Vec<Diagnostic>, usize)> {
    let files = walk::discover(root)?;
    let mut diags = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(&file.abs_path)?;
        let role = lints::classify(&file.rel_path);
        let mut file_diags = lints::check_file(&file.rel_path, role, &text);
        if file.is_integration_test {
            file_diags.retain(|d| d.lint == "module-doc" || d.lint == "bad-allow");
        }
        diags.extend(file_diags);
    }
    Ok((diags, files.len()))
}
