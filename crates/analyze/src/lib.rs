//! # bestk-analyze
//!
//! A dependency-free, token-level static analysis engine enforcing the
//! workspace's reliability contract (`DESIGN.md` §13): crate roots forbid
//! `unsafe`, library code never unwraps or panics, truncating integer
//! casts go through the blessed `bestk_graph::cast` helpers, locks are
//! never held across I/O or `bestk_exec` dispatch, hash-container
//! iteration and unordered float reduction stay out of output paths, and
//! hot-path degree/offset/budget arithmetic is overflow-checked.
//!
//! Architecture, bottom up:
//!
//! * [`lex`] — a spanned Rust lexer whose tokens tile the source exactly;
//! * [`model`] — the per-file token model: significant-token view,
//!   `#[cfg(test)]` regions, allow-directive tables;
//! * [`lints`] — the token-sequence pattern lints;
//! * [`passes`] — per-file determinism and arithmetic passes;
//! * [`facts`] — per-file structural facts plus the cross-file
//!   lock-discipline pass (call-graph fixpoint, lock-order graph);
//! * [`fingerprint`] / [`baseline`] / [`json`] — stable finding
//!   identities, the shrink-only baseline workflow, and the
//!   machine-readable report.
//!
//! No `syn`, no rustc internals — the checker builds offline in under a
//! second and its false-positive escape hatch is an explicit, reasoned
//! `// bestk-analyze: allow(<lint>) — <reason>` comment that is itself
//! linted.
//!
//! Run it as `cargo run -p bestk-analyze -- check` (CI does); exit code 0
//! means clean, 1 means violations, 2 means the invocation itself failed.
//!
//! bestk-analyze: allow-file(bad-allow) — these docs quote the directive syntax

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod facts;
pub mod fingerprint;
pub mod json;
pub mod lex;
pub mod lints;
pub mod model;
pub mod passes;
pub mod report;
pub mod walk;

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

pub use report::Diagnostic;

/// Full result of a workspace analysis run.
pub struct Report {
    /// All findings, sorted by (path, line, lint, message), fingerprinted.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of source files walked.
    pub files_checked: usize,
}

/// Runs the full analysis over the workspace rooted at `root`.
///
/// Returns the diagnostics plus the number of files checked — the legacy
/// tuple shape; [`run_report`] is the richer entry point.
pub fn run(root: &Path) -> io::Result<(Vec<Diagnostic>, usize)> {
    let r = run_report(root)?;
    Ok((r.diagnostics, r.files_checked))
}

/// Runs the full analysis over the workspace rooted at `root`.
///
/// Each file is lexed once; the pattern lints and per-file passes run
/// over the shared [`model::FileModel`], structural facts are extracted,
/// and the cross-file lock-discipline pass runs over the aggregated
/// facts. Integration tests and benches (`tests/`, `benches/` trees) are
/// held only to the `module-doc` and `bad-allow` rules — they are test
/// code, where unwraps and panics are the assertion mechanism — and do
/// not contribute facts.
pub fn run_report(root: &Path) -> io::Result<Report> {
    let files = walk::discover(root)?;
    let mut diags = Vec::new();
    let mut all_facts = Vec::new();
    // Trimmed line text per (path, line), for fingerprinting.
    let mut snippets: BTreeMap<(String, usize), String> = BTreeMap::new();

    for file in &files {
        let text = std::fs::read_to_string(&file.abs_path)?;
        let model = model::FileModel::parse(&text);
        let role = lints::classify(&file.rel_path);

        let mut file_diags = lints::check_model(&file.rel_path, role, &model);
        if file.is_integration_test {
            file_diags.retain(|d| d.lint == "module-doc" || d.lint == "bad-allow");
        } else {
            file_diags.extend(passes::check_determinism(&file.rel_path, &model));
            file_diags.extend(passes::check_arith(&file.rel_path, &model));
            all_facts.push(facts::extract(&file.rel_path, &model));
        }
        for d in &file_diags {
            let line = u32::try_from(d.line).unwrap_or(u32::MAX);
            snippets.insert((d.path.clone(), d.line), model.line_text(line).to_string());
        }
        // Cross-file diagnostics may anchor to any line of this file.
        for (i, line) in text.lines().enumerate() {
            snippets
                .entry((file.rel_path.clone(), i + 1))
                .or_insert_with(|| line.trim().to_string());
        }
        diags.extend(file_diags);
    }

    diags.extend(facts::aggregate(&all_facts));

    // Deterministic order, then occurrence-indexed fingerprints.
    diags.sort_by(|a, b| {
        (&a.path, a.line, a.lint, &a.message).cmp(&(&b.path, b.line, b.lint, &b.message))
    });
    let mut occurrence: BTreeMap<(String, &'static str, String), usize> = BTreeMap::new();
    for d in &mut diags {
        let snippet = snippets
            .get(&(d.path.clone(), d.line))
            .cloned()
            .unwrap_or_default();
        let key = (d.path.clone(), d.lint, snippet.clone());
        let occ = occurrence.entry(key).or_insert(0);
        d.fingerprint = fingerprint::fingerprint(d.lint, &d.path, &snippet, *occ);
        *occ += 1;
    }

    Ok(Report {
        diagnostics: diags,
        files_checked: files.len(),
    })
}
