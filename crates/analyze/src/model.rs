//! Per-file token model shared by every lint and analysis pass.
//!
//! [`FileModel::parse`] lexes a file once and precomputes the views the
//! passes need: the *significant* token sequence (comments and whitespace
//! filtered out), a parallel `#[cfg(test)]`-region flag per significant
//! token, the allow-directive tables, and the module-doc bit. Passes
//! match token sequences against the significant view — string literals
//! and comments can no longer impersonate code, which is what retired the
//! old line-blanking `SourceModel` and its substring hacks.
//!
//! bestk-analyze: allow-file(bad-allow) — these docs quote the directive syntax

use std::collections::BTreeMap;

use crate::lex::{lex, Token, TokenKind};
use crate::lints::is_known_lint;

/// Suppression tables for one file: file-wide allows plus per-line allows
/// (an `allow(<lint>)` covers its own line and the next).
#[derive(Debug, Default, Clone)]
pub struct AllowTable {
    file_wide: Vec<String>,
    by_line: BTreeMap<u32, Vec<String>>,
}

impl AllowTable {
    /// True if `lint` is suppressed at 1-based `line`.
    pub fn allowed(&self, lint: &str, line: u32) -> bool {
        self.file_wide.iter().any(|l| l == lint)
            || self
                .by_line
                .get(&line)
                .is_some_and(|ls| ls.iter().any(|l| l == lint))
    }

    /// True if `lint` is suppressed for the whole file.
    pub fn allowed_file_wide(&self, lint: &str) -> bool {
        self.file_wide.iter().any(|l| l == lint)
    }
}

/// Parsed allow comment: the lint it suppresses and whether it is
/// file-wide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Lint id named in the directive.
    pub lint: String,
    /// True for `allow-file(...)`.
    pub file_wide: bool,
    /// True when substantive text follows the dash separator.
    pub has_reason: bool,
}

/// Extracts every `bestk-analyze:` directive from a comment string.
pub fn parse_allows(comment: &str) -> Vec<Allow> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("bestk-analyze:") {
        rest = &rest[pos + "bestk-analyze:".len()..];
        let directive = rest.trim_start();
        let file_wide = directive.starts_with("allow-file(");
        let keyword = if file_wide { "allow-file(" } else { "allow(" };
        if let Some(body) = directive.strip_prefix(keyword) {
            if let Some(close) = body.find(')') {
                let lint = body[..close].trim().to_string();
                let tail = &body[close + 1..];
                // A reason is anything substantive after a dash separator.
                let has_reason = tail
                    .trim_start()
                    .trim_start_matches(['—', '-', ':'])
                    .trim()
                    .len()
                    >= 3;
                out.push(Allow {
                    lint,
                    file_wide,
                    has_reason,
                });
            }
        }
    }
    out
}

/// One file, lexed and indexed for the passes.
pub struct FileModel<'a> {
    /// The source text the tokens span.
    pub src: &'a str,
    /// Every token, trivia included; spans tile `src`.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the significant (non-trivia) tokens.
    pub sig: Vec<usize>,
    /// Parallel to `sig`: token sits inside a `#[cfg(test)]` region.
    pub in_test: Vec<bool>,
    /// Allow-directive tables parsed from comment tokens.
    pub allows: AllowTable,
    /// Malformed directives: (line, message) pairs for `bad-allow`.
    pub bad_allows: Vec<(u32, String)>,
    /// True when a `//!` or `/*!` doc appears within the first 30 lines.
    pub has_module_doc: bool,
}

impl<'a> FileModel<'a> {
    /// Lexes and indexes `src`.
    pub fn parse(src: &'a str) -> FileModel<'a> {
        let tokens = lex(src);
        let mut sig = Vec::with_capacity(tokens.len());
        let mut has_module_doc = false;
        let mut allows = AllowTable::default();
        let mut bad_allows = Vec::new();

        for (i, t) in tokens.iter().enumerate() {
            match t.kind {
                TokenKind::Whitespace => {}
                TokenKind::LineComment | TokenKind::BlockComment => {
                    let text = t.text(src);
                    if t.line <= 30 && (text.starts_with("//!") || text.starts_with("/*!")) {
                        has_module_doc = true;
                    }
                    for allow in parse_allows(text) {
                        if !is_known_lint(&allow.lint) {
                            bad_allows.push((
                                t.line,
                                format!("allow names unknown lint {:?}", allow.lint),
                            ));
                            continue;
                        }
                        if !allow.has_reason {
                            bad_allows.push((
                                t.line,
                                format!("allow({}) must state a reason after a dash", allow.lint),
                            ));
                            continue;
                        }
                        if allow.file_wide {
                            allows.file_wide.push(allow.lint);
                        } else {
                            // Covers its own line and the next (the common
                            // "comment above the offending statement" shape).
                            allows
                                .by_line
                                .entry(t.line)
                                .or_default()
                                .push(allow.lint.clone());
                            allows
                                .by_line
                                .entry(t.line + 1)
                                .or_default()
                                .push(allow.lint);
                        }
                    }
                }
                _ => sig.push(i),
            }
        }

        let in_test = test_regions(&tokens, &sig, src);
        FileModel {
            src,
            tokens,
            sig,
            in_test,
            allows,
            bad_allows,
            has_module_doc,
        }
    }

    /// Number of significant tokens.
    pub fn len(&self) -> usize {
        self.sig.len()
    }

    /// True when the file has no significant tokens.
    pub fn is_empty(&self) -> bool {
        self.sig.is_empty()
    }

    /// The `i`-th significant token.
    pub fn tok(&self, i: usize) -> &Token {
        &self.tokens[self.sig[i]]
    }

    /// Text of the `i`-th significant token.
    pub fn text(&self, i: usize) -> &'a str {
        self.tok(i).text(self.src)
    }

    /// 1-based line of the `i`-th significant token.
    pub fn line(&self, i: usize) -> u32 {
        self.tok(i).line
    }

    /// True if significant token `i` exists and is the punct byte `b`.
    pub fn is_punct(&self, i: usize, b: u8) -> bool {
        i < self.sig.len() && self.tok(i).kind == TokenKind::Punct(b)
    }

    /// True if significant token `i` exists and is the identifier `name`.
    pub fn is_ident(&self, i: usize, name: &str) -> bool {
        i < self.sig.len() && self.tok(i).kind == TokenKind::Ident && self.text(i) == name
    }

    /// The identifier text at significant token `i`, if it is one.
    pub fn ident(&self, i: usize) -> Option<&'a str> {
        (i < self.sig.len() && self.tok(i).kind == TokenKind::Ident).then(|| self.text(i))
    }

    /// True if the `i`-th significant token is inside `#[cfg(test)]` code.
    pub fn sig_in_test(&self, i: usize) -> bool {
        self.in_test[i]
    }

    /// The source line text containing 1-based `line`, trimmed — the
    /// snippet that goes into diagnostic fingerprints.
    pub fn line_text(&self, line: u32) -> &'a str {
        self.src
            .split('\n')
            .nth(line.saturating_sub(1) as usize)
            .unwrap_or("")
            .trim()
    }
}

/// Computes the `#[cfg(test)]` flag for each significant token: an
/// attribute whose bracket group mentions both `cfg` and `test` marks the
/// next braced block (attr and header tokens stay *outside* the region;
/// the block body is inside).
fn test_regions(tokens: &[Token], sig: &[usize], src: &str) -> Vec<bool> {
    let mut in_test = vec![false; sig.len()];
    let mut depth = 0u32;
    let mut regions: Vec<u32> = Vec::new(); // stack of depths owning a test region
    let mut pending = false;

    let text = |si: usize| tokens[sig[si]].text(src);
    let kind = |si: usize| tokens[sig[si]].kind;

    let mut i = 0usize;
    while i < sig.len() {
        match kind(i) {
            TokenKind::Punct(b'#') => {
                // `#[...]` or `#![...]`: scan the bracket group.
                let mut j = i + 1;
                if j < sig.len() && kind(j) == TokenKind::Punct(b'!') {
                    j += 1;
                }
                if j < sig.len() && kind(j) == TokenKind::Punct(b'[') {
                    let mut bdepth = 0u32;
                    let (mut saw_cfg, mut saw_test) = (false, false);
                    while j < sig.len() {
                        match kind(j) {
                            TokenKind::Punct(b'[') => bdepth += 1,
                            TokenKind::Punct(b']') => {
                                bdepth -= 1;
                                if bdepth == 0 {
                                    break;
                                }
                            }
                            TokenKind::Ident => {
                                let t = text(j);
                                saw_cfg |= t == "cfg";
                                saw_test |= t == "test";
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    if saw_cfg && saw_test {
                        pending = true;
                    }
                    // Attribute tokens keep the surrounding region's flag.
                    let inside = !regions.is_empty();
                    let last = j.min(sig.len() - 1);
                    for slot in in_test.iter_mut().take(last + 1).skip(i) {
                        *slot = inside;
                    }
                    i = j + 1;
                    continue;
                }
                in_test[i] = !regions.is_empty();
            }
            TokenKind::Punct(b'{') => {
                in_test[i] = !regions.is_empty() || pending;
                depth += 1;
                if pending {
                    regions.push(depth);
                    pending = false;
                }
            }
            TokenKind::Punct(b'}') => {
                in_test[i] = !regions.is_empty();
                if let Some(&top) = regions.last() {
                    if depth == top {
                        regions.pop();
                    }
                }
                depth = depth.saturating_sub(1);
            }
            TokenKind::Punct(b';') => {
                // `#[cfg(test)] use ...;` — the item ended without a block.
                in_test[i] = !regions.is_empty() || pending;
                pending = false;
            }
            _ => {
                in_test[i] = !regions.is_empty() || pending;
            }
        }
        i += 1;
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sig_skips_trivia() {
        let m = FileModel::parse("//! doc\nlet x = 1; // trailing\n");
        let texts: Vec<_> = (0..m.len()).map(|i| m.text(i)).collect();
        assert_eq!(texts, vec!["let", "x", "=", "1", ";"]);
        assert!(m.has_module_doc);
    }

    #[test]
    fn test_region_flags_body_only() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn live2() {}\n";
        let m = FileModel::parse(src);
        let flag_of = |name: &str| {
            (0..m.len())
                .find(|&i| m.text(i) == name)
                .map(|i| m.sig_in_test(i))
                .unwrap()
        };
        assert!(!flag_of("live"));
        assert!(flag_of("unwrap"));
        assert!(!flag_of("live2"));
    }

    #[test]
    fn cfg_test_on_single_item_without_block() {
        let src = "#[cfg(test)]\nuse helpers::gate;\nfn live() { x.unwrap(); }\n";
        let m = FileModel::parse(src);
        let i = (0..m.len()).find(|&i| m.text(i) == "unwrap").unwrap();
        assert!(!m.sig_in_test(i), "pending flag must clear at the `;`");
    }

    #[test]
    fn allow_tables_cover_own_and_next_line() {
        let src =
            "//! d\n// bestk-analyze: allow(no-unwrap) — reasoned\nx.unwrap();\ny.unwrap();\n";
        let m = FileModel::parse(src);
        assert!(m.allows.allowed("no-unwrap", 2));
        assert!(m.allows.allowed("no-unwrap", 3));
        assert!(!m.allows.allowed("no-unwrap", 4));
        assert!(m.bad_allows.is_empty());
    }

    #[test]
    fn malformed_allows_are_collected() {
        let src = "//! d\n// bestk-analyze: allow(no-unwrap)\n// bestk-analyze: allow(no-such) — reason here\n";
        let m = FileModel::parse(src);
        assert_eq!(m.bad_allows.len(), 2);
        assert!(m.bad_allows[0].1.contains("must state a reason"));
        assert!(m.bad_allows[1].1.contains("unknown lint"));
    }

    #[test]
    fn line_text_trims() {
        let m = FileModel::parse("a\n   let x = 1;   \n");
        assert_eq!(m.line_text(2), "let x = 1;");
    }
}
