//! Structural facts per file and the cross-file lock-discipline pass.
//!
//! [`extract`] walks a [`FileModel`] and records *facts*: the functions a
//! file defines (with whether each directly performs I/O or `bestk_exec`
//! dispatch, and what it calls), the guard-producing helpers it declares
//! (functions returning `MutexGuard`/`RwLock*Guard`), and every lock
//! acquisition together with the live range of its guard.
//!
//! [`aggregate`] then fuses facts workspace-wide: a call-graph fixpoint
//! propagates "does I/O" / "does dispatch" from callees to callers (by
//! unqualified name — a deliberate over-approximation), guard live ranges
//! are checked against that closure (`lock-held-io`,
//! `lock-held-dispatch`), directly nested acquisitions become
//! `lock-nested` findings and edges in the workspace lock graph, and any
//! cycle in that graph is reported as `lock-order` on every edge that
//! closes it.
//!
//! Guard liveness is lexical: a `let g = ...` guard lives to the end of
//! its enclosing block or an explicit `drop(g)`; `let _ = ...` dies
//! immediately; an unbound acquisition is a temporary that lives to the
//! end of its statement.

use std::collections::{BTreeMap, BTreeSet};

use crate::model::{AllowTable, FileModel};
use crate::report::Diagnostic;

/// Keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "let", "move", "in", "as", "impl",
];

/// Method names that constitute file/network I/O when invoked.
const IO_METHODS: &[&str] = &[
    "write_all",
    "write_fmt",
    "flush",
    "read_exact",
    "read_to_string",
    "read_to_end",
    "read_line",
    "fill_buf",
    "sync_all",
    "sync_data",
    "accept",
    "incoming",
    "set_read_timeout",
    "set_write_timeout",
];

/// `ExecPolicy` entry points: a guard held across one of these is held
/// across the worker fan-out.
const DISPATCH_METHODS: &[&str] = &[
    "parallel_for",
    "map_chunks",
    "map_reduce",
    "for_each_disjoint",
];

/// One call site observed inside a function body or guard range.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Unqualified callee name (`read_to_string`, `load_snapshot`, ...).
    pub name: String,
    /// 1-based line of the call.
    pub line: u32,
}

/// A direct lock acquisition nested inside another guard's live range.
#[derive(Debug, Clone)]
pub struct NestedAcq {
    /// Identity of the inner lock.
    pub lock: String,
    /// 1-based line of the inner acquisition.
    pub line: u32,
}

/// One lock acquisition and what happens while its guard is live.
#[derive(Debug, Clone)]
pub struct GuardRange {
    /// Identity of the lock (receiver chain or guard-helper argument).
    pub lock: String,
    /// 1-based line of the acquisition.
    pub line: u32,
    /// Calls made while the guard is live.
    pub calls: Vec<CallSite>,
    /// Direct I/O operations while the guard is live: (what, line).
    pub io: Vec<(String, u32)>,
    /// Direct dispatch operations while the guard is live: (what, line).
    pub dispatch: Vec<(String, u32)>,
    /// Other locks acquired while the guard is live.
    pub acquires: Vec<NestedAcq>,
}

/// What one function does, as far as the token scan can tell.
#[derive(Debug, Clone)]
pub struct FnFact {
    /// Unqualified function name.
    pub name: String,
    /// Body directly performs file/network I/O.
    pub does_io: bool,
    /// Body directly enters an `ExecPolicy` fan-out.
    pub does_dispatch: bool,
    /// Unqualified names this body calls.
    pub calls: BTreeSet<String>,
}

/// Everything [`extract`] learned about one file.
pub struct FileFacts {
    /// Repo-relative path.
    pub path: String,
    /// Crate the file belongs to (`graph`, `engine`, ... or `root`).
    pub crate_name: String,
    /// Functions defined here (non-test).
    pub fns: Vec<FnFact>,
    /// Functions defined *in this file* that return lock guards.
    pub guard_fns: BTreeSet<String>,
    /// Lock acquisitions and their guard live ranges.
    pub guards: Vec<GuardRange>,
    /// The file's suppression tables, for aggregate-time checks.
    pub allows: AllowTable,
}

/// The crate a repo-relative path belongs to.
pub fn crate_of(path: &str) -> String {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("root")
        .to_string()
}

/// Extracts structural facts from one parsed file.
pub fn extract(path: &str, m: &FileModel<'_>) -> FileFacts {
    let fn_spans = find_fns(m);
    let guard_fns: BTreeSet<String> = fn_spans
        .iter()
        .filter(|f| f.returns_guard)
        .map(|f| f.name.clone())
        .collect();

    let mut fns = Vec::new();
    for f in &fn_spans {
        let mut fact = FnFact {
            name: f.name.clone(),
            does_io: false,
            does_dispatch: false,
            calls: BTreeSet::new(),
        };
        let mut j = f.body.0;
        while j <= f.body.1 {
            if let Some((what, _)) = io_op_at(m, j) {
                fact.does_io = true;
                let _ = what;
            }
            if dispatch_op_at(m, j).is_some() {
                fact.does_dispatch = true;
            }
            if let Some(name) = call_at(m, j) {
                fact.calls.insert(name.to_string());
            }
            j += 1;
        }
        fns.push(fact);
    }

    let guards = find_guards(m, &guard_fns);

    FileFacts {
        path: path.to_string(),
        crate_name: crate_of(path),
        fns,
        guard_fns,
        guards,
        allows: m.allows.clone(),
    }
}

/// A function span: name, body range in significant-token indices, and
/// whether its return type is a lock guard.
struct FnSpan {
    name: String,
    body: (usize, usize),
    returns_guard: bool,
}

/// Finds every non-test `fn` with a body.
fn find_fns(m: &FileModel<'_>) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < m.len() {
        if m.is_ident(i, "fn") && !m.sig_in_test(i) {
            if let Some(name) = m.ident(i + 1) {
                if let Some(span) = fn_span_from(m, i, name) {
                    out.push(span);
                }
            }
        }
        i += 1;
    }
    out
}

/// Parses one fn header starting at the `fn` keyword; returns its span if
/// it has a body.
fn fn_span_from(m: &FileModel<'_>, fn_idx: usize, name: &str) -> Option<FnSpan> {
    // Skip to the argument list's opening paren (over generics).
    let mut j = fn_idx + 2;
    let mut angle = 0i32;
    while j < m.len() {
        if m.is_punct(j, b'<') {
            angle += 1;
        } else if m.is_punct(j, b'>') {
            angle -= 1;
        } else if m.is_punct(j, b'(') && angle <= 0 {
            break;
        } else if m.is_punct(j, b'{') || m.is_punct(j, b';') {
            return None; // malformed or not a real fn header
        }
        j += 1;
    }
    // Skip the argument list.
    let mut paren = 0i32;
    while j < m.len() {
        if m.is_punct(j, b'(') {
            paren += 1;
        } else if m.is_punct(j, b')') {
            paren -= 1;
            if paren == 0 {
                j += 1;
                break;
            }
        }
        j += 1;
    }
    // Return type / where clause up to the body `{` or a bodyless `;`.
    let mut returns_guard = false;
    while j < m.len() {
        if m.is_punct(j, b'{') {
            break;
        }
        if m.is_punct(j, b';') {
            return None;
        }
        if let Some(t) = m.ident(j) {
            if matches!(t, "MutexGuard" | "RwLockReadGuard" | "RwLockWriteGuard") {
                returns_guard = true;
            }
        }
        j += 1;
    }
    if j >= m.len() {
        return None;
    }
    let open = j;
    let close = matching_brace(m, open)?;
    Some(FnSpan {
        name: name.to_string(),
        body: (open + 1, close.saturating_sub(1)),
        returns_guard,
    })
}

/// Index of the `}` matching the `{` at significant index `open`.
fn matching_brace(m: &FileModel<'_>, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = open;
    while j < m.len() {
        if m.is_punct(j, b'{') {
            depth += 1;
        } else if m.is_punct(j, b'}') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        j += 1;
    }
    None
}

/// Recognizes a direct I/O operation at significant index `j`.
fn io_op_at(m: &FileModel<'_>, j: usize) -> Option<(String, u32)> {
    // `fs::<anything>(` — the std::fs free functions.
    if m.is_ident(j, "fs") && m.is_punct(j + 1, b':') && m.is_punct(j + 2, b':') {
        if let Some(name) = m.ident(j + 3) {
            if m.is_punct(j + 4, b'(') || m.is_punct(j + 4, b':') {
                return Some((format!("fs::{name}"), m.line(j)));
            }
        }
    }
    // `File::open(` / `File::create(` / `File::options(`.
    if m.is_ident(j, "File") && m.is_punct(j + 1, b':') && m.is_punct(j + 2, b':') {
        if let Some(name @ ("open" | "create" | "options")) = m.ident(j + 3) {
            return Some((format!("File::{name}"), m.line(j)));
        }
    }
    // `TcpListener::bind(` / `TcpStream::connect(`.
    if (m.is_ident(j, "TcpListener") || m.is_ident(j, "TcpStream"))
        && m.is_punct(j + 1, b':')
        && m.is_punct(j + 2, b':')
    {
        if let Some(name @ ("bind" | "connect")) = m.ident(j + 3) {
            return Some((format!("{}::{name}", m.text(j)), m.line(j)));
        }
    }
    // Reader/writer/socket methods.
    if m.is_punct(j, b'.') && m.is_punct(j + 2, b'(') {
        if let Some(name) = m.ident(j + 1) {
            if IO_METHODS.contains(&name) {
                return Some((format!(".{name}()"), m.line(j + 1)));
            }
        }
    }
    None
}

/// Recognizes an `ExecPolicy` dispatch at significant index `j`.
fn dispatch_op_at(m: &FileModel<'_>, j: usize) -> Option<(String, u32)> {
    if m.is_punct(j, b'.') && m.is_punct(j + 2, b'(') {
        if let Some(name) = m.ident(j + 1) {
            if DISPATCH_METHODS.contains(&name) {
                return Some((format!(".{name}()"), m.line(j + 1)));
            }
        }
    }
    None
}

/// Recognizes a call at significant index `j` (free `f(`, path `a::f(`, or
/// method `.f(`), returning the unqualified callee name.
fn call_at<'a>(m: &'a FileModel<'_>, j: usize) -> Option<&'a str> {
    let name = m.ident(j)?;
    if !m.is_punct(j + 1, b'(') || CALL_KEYWORDS.contains(&name) {
        return None;
    }
    // `fn name(` is a definition, not a call.
    if j > 0 && m.is_ident(j - 1, "fn") {
        return None;
    }
    Some(name)
}

/// Walks back from the `.` of a method call, collecting the receiver
/// chain (`self.inner`, `PLAN`, `state().cell`, ...).
fn receiver_chain(m: &FileModel<'_>, dot: usize) -> String {
    let mut start = dot;
    // Accept ident(.ident)* and ident::ident segments; stop at anything else.
    let mut k = dot;
    loop {
        if k == 0 {
            break;
        }
        let prev = k - 1;
        if m.ident(prev).is_some() {
            start = prev;
            k = prev;
            // A `.` or `::` may continue the chain leftward.
            if k == 0 {
                break;
            }
            if m.is_punct(k - 1, b'.') {
                k -= 1;
                continue;
            }
            if k >= 2 && m.is_punct(k - 1, b':') && m.is_punct(k - 2, b':') {
                k -= 2;
                continue;
            }
            break;
        }
        break;
    }
    (start..dot).map(|i| m.text(i)).collect::<Vec<_>>().join("")
}

/// First-argument chain of a call whose `(` sits at significant index
/// `open`; `&`/`mut` stripped. Empty when the call has no arguments.
fn first_arg_chain(m: &FileModel<'_>, open: usize) -> String {
    let mut j = open + 1;
    while m.is_punct(j, b'&') || m.is_ident(j, "mut") {
        j += 1;
    }
    let mut parts = Vec::new();
    while j < m.len() {
        if let Some(t) = m.ident(j) {
            parts.push(t);
            j += 1;
            if m.is_punct(j, b'.') {
                parts.push(".");
                j += 1;
                continue;
            }
            if m.is_punct(j, b':') && m.is_punct(j + 1, b':') {
                parts.push("::");
                j += 2;
                continue;
            }
        }
        break;
    }
    parts.concat()
}

/// One detected acquisition before liveness resolution.
struct AcqSite {
    /// Significant-token index of the acquisition pattern start.
    site: usize,
    /// First significant token *after* the acquisition expression.
    after: usize,
    lock: String,
    line: u32,
}

/// Finds every lock acquisition and resolves each guard's live range.
fn find_guards(m: &FileModel<'_>, guard_fns: &BTreeSet<String>) -> Vec<GuardRange> {
    let mut sites: Vec<AcqSite> = Vec::new();
    for j in 0..m.len() {
        if m.sig_in_test(j) {
            continue;
        }
        // `recv.lock()` — the std::sync::Mutex entry point.
        if m.is_punct(j, b'.')
            && m.is_ident(j + 1, "lock")
            && m.is_punct(j + 2, b'(')
            && m.is_punct(j + 3, b')')
        {
            let lock = receiver_chain(m, j);
            if !lock.is_empty() {
                sites.push(AcqSite {
                    site: j,
                    after: j + 4,
                    lock,
                    line: m.line(j + 1),
                });
            }
            continue;
        }
        // A call to a guard-returning helper defined in this file.
        if let Some(name) = m.ident(j) {
            if guard_fns.contains(name)
                && m.is_punct(j + 1, b'(')
                && !(j > 0 && m.is_ident(j - 1, "fn"))
            {
                let close = matching_paren(m, j + 1).unwrap_or(j + 1);
                let arg = first_arg_chain(m, j + 1);
                let lock = if m.is_punct(j.wrapping_sub(1), b'.') {
                    // Method form: `self.guard()` — identify by receiver+fn.
                    format!("{}.{name}", receiver_chain(m, j - 1))
                } else if arg.is_empty() {
                    name.to_string()
                } else {
                    arg
                };
                sites.push(AcqSite {
                    site: j,
                    after: close + 1,
                    lock,
                    line: m.line(j),
                });
            }
        }
    }

    let mut guards = Vec::new();
    for s in &sites {
        let Some((range_start, range_end)) = live_range(m, s) else {
            continue;
        };
        let mut g = GuardRange {
            lock: s.lock.clone(),
            line: s.line,
            calls: Vec::new(),
            io: Vec::new(),
            dispatch: Vec::new(),
            acquires: Vec::new(),
        };
        let mut j = range_start;
        while j <= range_end && j < m.len() {
            if let Some((what, line)) = io_op_at(m, j) {
                g.io.push((what, line));
            }
            if let Some((what, line)) = dispatch_op_at(m, j) {
                g.dispatch.push((what, line));
            }
            if let Some(name) = call_at(m, j) {
                g.calls.push(CallSite {
                    name: name.to_string(),
                    line: m.line(j),
                });
            }
            j += 1;
        }
        for other in &sites {
            if other.site > s.site && other.site >= range_start && other.site <= range_end {
                g.acquires.push(NestedAcq {
                    lock: other.lock.clone(),
                    line: other.line,
                });
            }
        }
        guards.push(g);
    }
    guards
}

/// Index of the `)` matching the `(` at significant index `open`.
fn matching_paren(m: &FileModel<'_>, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = open;
    while j < m.len() {
        if m.is_punct(j, b'(') {
            depth += 1;
        } else if m.is_punct(j, b')') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        j += 1;
    }
    None
}

/// Whether the tokens at `after` chain a further method call onto the
/// acquisition expression. `guard().method(...)` consumes the guard inside
/// the statement, so a surrounding `let x =` binds the method's *result*,
/// not the guard — except `.unwrap()` / `.expect(...)`, which return the
/// guard itself and are skipped over.
fn chain_consumes_guard(m: &FileModel<'_>, mut after: usize) -> bool {
    loop {
        if m.is_punct(after, b'?') {
            after += 1;
            continue;
        }
        if !m.is_punct(after, b'.') {
            return false;
        }
        match m.ident(after + 1) {
            Some("unwrap") | Some("expect") => {
                // The guard passes through; look past the call.
                let Some(close) = matching_paren(m, after + 2) else {
                    return false;
                };
                after = close + 1;
            }
            Some(_) => return true,
            None => return false,
        }
    }
}

/// Resolves the live range (in significant-token indices) of the guard
/// produced at `s`. `None` when the guard dies immediately (`let _ =`).
fn live_range(m: &FileModel<'_>, s: &AcqSite) -> Option<(usize, usize)> {
    // Is the acquisition bound by `let [mut] name =`? A trailing method
    // chain consumes the guard first, so the binding then captures the
    // chained result and the guard itself is a statement-scoped temporary.
    let expr_start = expr_start_of(m, s);
    let binding = if chain_consumes_guard(m, s.after) {
        None
    } else {
        let_binding_before(m, expr_start)
    };
    match binding {
        Some("_") => None, // `let _ = ...` drops the guard on the spot
        Some(name) => {
            // Named guard: lives to the end of the enclosing block or an
            // explicit `drop(name)`.
            let mut depth = 0i32;
            let mut j = s.after;
            while j < m.len() {
                if m.is_punct(j, b'{') {
                    depth += 1;
                } else if m.is_punct(j, b'}') {
                    if depth == 0 {
                        return Some((s.after, j));
                    }
                    depth -= 1;
                } else if m.is_ident(j, "drop")
                    && m.is_punct(j + 1, b'(')
                    && m.is_ident(j + 2, name)
                    && m.is_punct(j + 3, b')')
                {
                    return Some((s.after, j));
                }
                j += 1;
            }
            Some((s.after, m.len().saturating_sub(1)))
        }
        None => {
            // Temporary: lives to the end of the statement.
            let mut depth = 0i32;
            let mut j = s.after;
            while j < m.len() {
                if m.is_punct(j, b'(') || m.is_punct(j, b'[') || m.is_punct(j, b'{') {
                    depth += 1;
                } else if m.is_punct(j, b')') || m.is_punct(j, b']') || m.is_punct(j, b'}') {
                    if depth == 0 {
                        return Some((s.after, j));
                    }
                    depth -= 1;
                } else if m.is_punct(j, b';') && depth <= 0 {
                    return Some((s.after, j));
                }
                j += 1;
            }
            Some((s.after, m.len().saturating_sub(1)))
        }
    }
}

/// Significant-token index where the acquisition expression begins (the
/// start of the receiver chain for method forms, the callee otherwise).
fn expr_start_of(m: &FileModel<'_>, s: &AcqSite) -> usize {
    if m.is_punct(s.site, b'.') {
        // Walk the receiver chain leftward the same way receiver_chain does.
        let chain = receiver_chain(m, s.site);
        let mut k = s.site;
        let mut remaining = chain.len();
        while k > 0 && remaining > 0 {
            k -= 1;
            remaining = remaining.saturating_sub(m.text(k).len());
        }
        k
    } else if s.site > 0 && m.is_punct(s.site - 1, b'.') {
        let mut k = s.site - 1;
        let chain = receiver_chain(m, k);
        let mut remaining = chain.len();
        while k > 0 && remaining > 0 {
            k -= 1;
            remaining = remaining.saturating_sub(m.text(k).len());
        }
        k
    } else {
        s.site
    }
}

/// If the tokens immediately before `expr_start` are `let [mut] name =`,
/// returns the bound name.
fn let_binding_before<'a>(m: &'a FileModel<'_>, expr_start: usize) -> Option<&'a str> {
    if expr_start < 3 || !m.is_punct(expr_start - 1, b'=') {
        return None;
    }
    let name_idx = expr_start - 2;
    let name = m.ident(name_idx)?;
    if m.is_ident(name_idx.wrapping_sub(1), "let")
        || (m.is_ident(name_idx.wrapping_sub(1), "mut")
            && m.is_ident(name_idx.wrapping_sub(2), "let"))
    {
        return Some(name);
    }
    None
}

/// Workspace-wide lock-discipline pass over per-file facts.
pub fn aggregate(files: &[FileFacts]) -> Vec<Diagnostic> {
    // 1. Call-graph fixpoint over (crate, fn-name) nodes. A call resolves
    //    to the caller's own crate when it defines the name; otherwise to
    //    the single crate defining it workspace-wide; ambiguous names
    //    (`new`, `get`, ...) do not propagate across crates — precision
    //    over recall, the per-crate union still catches the seam-crossing
    //    helpers that matter.
    type Node<'a> = (&'a str, &'a str);
    let mut io_fns: BTreeSet<Node> = BTreeSet::new();
    let mut dispatch_fns: BTreeSet<Node> = BTreeSet::new();
    let mut calls: BTreeMap<Node, BTreeSet<&str>> = BTreeMap::new();
    let mut name_crates: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for f in files {
        for fact in &f.fns {
            let node: Node = (&f.crate_name, &fact.name);
            if fact.does_io {
                io_fns.insert(node);
            }
            if fact.does_dispatch {
                dispatch_fns.insert(node);
            }
            name_crates
                .entry(&fact.name)
                .or_default()
                .insert(&f.crate_name);
            let entry = calls.entry(node).or_default();
            for c in &fact.calls {
                entry.insert(c);
            }
        }
    }
    let resolve = |caller_crate: &str, callee: &str| -> Option<(String, String)> {
        let crates = name_crates.get(callee)?;
        if crates.contains(caller_crate) {
            Some((caller_crate.to_string(), callee.to_string()))
        } else if crates.len() == 1 {
            let only = crates.iter().next()?;
            Some(((*only).to_string(), callee.to_string()))
        } else {
            None
        }
    };
    loop {
        let mut changed = false;
        for (&(krate, name), callees) in &calls {
            let hits = |set: &BTreeSet<Node>| {
                callees.iter().any(|c| {
                    resolve(krate, c)
                        .is_some_and(|(ck, cn)| set.contains(&(ck.as_str(), cn.as_str())))
                })
            };
            if !io_fns.contains(&(krate, name)) && hits(&io_fns) {
                io_fns.insert((krate, name));
                changed = true;
            }
            if !dispatch_fns.contains(&(krate, name)) && hits(&dispatch_fns) {
                dispatch_fns.insert((krate, name));
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // 2. Walk guard ranges: I/O, dispatch, and nesting under a live guard.
    let mut diags = Vec::new();
    let mut seen: BTreeSet<(String, u32, &'static str)> = BTreeSet::new();
    let mut edges: BTreeMap<(String, String), Vec<(String, u32)>> = BTreeMap::new();
    for f in files {
        let qual = |lock: &str| format!("{}::{}", f.crate_name, lock);
        for g in &f.guards {
            for (what, line) in &g.io {
                if !f.allows.allowed("lock-held-io", *line)
                    && seen.insert((f.path.clone(), *line, "lock-held-io"))
                {
                    diags.push(Diagnostic::new(
                        &f.path,
                        *line as usize,
                        "lock-held-io",
                        format!("guard on `{}` held across {what}", g.lock),
                    ));
                }
            }
            for (what, line) in &g.dispatch {
                if !f.allows.allowed("lock-held-dispatch", *line)
                    && seen.insert((f.path.clone(), *line, "lock-held-dispatch"))
                {
                    diags.push(Diagnostic::new(
                        &f.path,
                        *line as usize,
                        "lock-held-dispatch",
                        format!("guard on `{}` held across {what}", g.lock),
                    ));
                }
            }
            for c in &g.calls {
                let resolved = resolve(&f.crate_name, &c.name);
                let in_set = |set: &BTreeSet<(&str, &str)>| {
                    resolved
                        .as_ref()
                        .is_some_and(|(ck, cn)| set.contains(&(ck.as_str(), cn.as_str())))
                };
                if in_set(&io_fns)
                    && !f.allows.allowed("lock-held-io", c.line)
                    && seen.insert((f.path.clone(), c.line, "lock-held-io"))
                {
                    diags.push(Diagnostic::new(
                        &f.path,
                        c.line as usize,
                        "lock-held-io",
                        format!(
                            "guard on `{}` held across call to `{}`, which performs I/O",
                            g.lock, c.name
                        ),
                    ));
                }
                if in_set(&dispatch_fns)
                    && !f.allows.allowed("lock-held-dispatch", c.line)
                    && seen.insert((f.path.clone(), c.line, "lock-held-dispatch"))
                {
                    diags.push(Diagnostic::new(
                        &f.path,
                        c.line as usize,
                        "lock-held-dispatch",
                        format!(
                            "guard on `{}` held across call to `{}`, which dispatches work",
                            g.lock, c.name
                        ),
                    ));
                }
            }
            for a in &g.acquires {
                if a.lock == g.lock {
                    continue; // re-entrant self-acquisition is a different bug
                }
                edges
                    .entry((qual(&g.lock), qual(&a.lock)))
                    .or_default()
                    .push((f.path.clone(), a.line));
                if !f.allows.allowed("lock-nested", a.line)
                    && seen.insert((f.path.clone(), a.line, "lock-nested"))
                {
                    diags.push(Diagnostic::new(
                        &f.path,
                        a.line as usize,
                        "lock-nested",
                        format!(
                            "acquiring `{}` while the guard on `{}` is live",
                            a.lock, g.lock
                        ),
                    ));
                }
            }
        }
    }

    // 3. Lock-order cycles: an edge A -> B plus a path B -> ... -> A.
    let allow_of: BTreeMap<&str, &AllowTable> =
        files.iter().map(|f| (f.path.as_str(), &f.allows)).collect();
    let adj: BTreeMap<&str, BTreeSet<&str>> = {
        let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (a, b) in edges.keys() {
            adj.entry(a).or_default().insert(b);
        }
        adj
    };
    for ((a, b), sites) in &edges {
        if reachable(&adj, b, a) {
            for (path, line) in sites {
                let allowed = allow_of
                    .get(path.as_str())
                    .is_some_and(|t| t.allowed("lock-order", *line));
                if !allowed && seen.insert((path.clone(), *line, "lock-order")) {
                    diags.push(Diagnostic::new(
                        path,
                        *line as usize,
                        "lock-order",
                        format!("lock-order cycle: `{a}` is held while acquiring `{b}`, and `{b}` can be held while acquiring `{a}`"),
                    ));
                }
            }
        }
    }
    diags
}

/// Depth-first reachability in the lock graph.
fn reachable(adj: &BTreeMap<&str, BTreeSet<&str>>, from: &str, to: &str) -> bool {
    let mut stack = vec![from.to_string()];
    let mut seen = BTreeSet::new();
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if !seen.insert(n.clone()) {
            continue;
        }
        if let Some(next) = adj.get(n.as_str()) {
            for c in next {
                stack.push(c.to_string());
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(path: &str, src: &str) -> FileFacts {
        extract(path, &FileModel::parse(src))
    }

    #[test]
    fn fn_facts_record_io_and_calls() {
        let f = facts(
            "crates/x/src/a.rs",
            "//! d\nfn save(p: &Path) -> io::Result<()> { fs::write(p, b\"x\")?; helper(); Ok(()) }\nfn pure() -> u32 { 1 }\n",
        );
        let save = f.fns.iter().find(|f| f.name == "save").unwrap();
        assert!(save.does_io);
        assert!(save.calls.contains("helper"));
        let pure = f.fns.iter().find(|f| f.name == "pure").unwrap();
        assert!(!pure.does_io);
    }

    #[test]
    fn guard_fn_detected_by_return_type() {
        let f = facts(
            "crates/x/src/a.rs",
            "//! d\nfn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> { m.lock().unwrap_or_else(|p| p.into_inner()) }\n",
        );
        assert!(f.guard_fns.contains("lock"));
    }

    #[test]
    fn named_guard_lives_to_block_end() {
        let f = facts(
            "crates/x/src/a.rs",
            "//! d\nfn f() {\n    let g = STATE.lock();\n    fs::write(\"p\", b\"x\");\n}\n",
        );
        assert_eq!(f.guards.len(), 1);
        assert_eq!(f.guards[0].lock, "STATE");
        assert_eq!(f.guards[0].io.len(), 1);
    }

    #[test]
    fn dropped_guard_frees_the_range() {
        let f = facts(
            "crates/x/src/a.rs",
            "//! d\nfn f() {\n    let g = STATE.lock();\n    drop(g);\n    fs::write(\"p\", b\"x\");\n}\n",
        );
        assert!(f.guards[0].io.is_empty(), "{:?}", f.guards[0].io);
    }

    #[test]
    fn let_underscore_dies_immediately() {
        let f = facts(
            "crates/x/src/a.rs",
            "//! d\nfn f() {\n    let _ = STATE.lock();\n    fs::write(\"p\", b\"x\");\n}\n",
        );
        assert!(f.guards.is_empty());
    }

    #[test]
    fn temporary_guard_lives_to_statement_end() {
        let f = facts(
            "crates/x/src/a.rs",
            "//! d\nfn f() {\n    *STATE.lock().unwrap_or_else(|p| p.into_inner()) = 1;\n    fs::write(\"p\", b\"x\");\n}\n",
        );
        assert_eq!(f.guards.len(), 1);
        assert!(f.guards[0].io.is_empty(), "{:?}", f.guards[0].io);
    }

    #[test]
    fn chained_call_consumes_the_guard_before_the_binding() {
        // `let d = self.guard().checkout(n)?` binds checkout's result, not
        // the guard — the guard dies at the semicolon, so later I/O in the
        // block is lock-free.
        let f = facts(
            "crates/x/src/a.rs",
            "//! d\nimpl S {\nfn guard(&self) -> MutexGuard<'_, E> { self.inner.lock().unwrap_or_else(|p| p.into_inner()) }\nfn f(&self) {\n    let d = self.guard().checkout(0);\n    fs::write(\"p\", b\"x\");\n}\n}\n",
        );
        let g = f.guards.iter().find(|g| g.lock == "self.guard").unwrap();
        assert!(g.io.is_empty(), "{:?}", g.io);
    }

    #[test]
    fn unwrap_chain_still_binds_the_guard() {
        // `.unwrap()` returns the guard itself, so the binding holds it to
        // block end and the I/O below is under the lock.
        let f = facts(
            "crates/x/src/a.rs",
            "//! d\nfn f() {\n    let g = STATE.lock().unwrap();\n    fs::write(\"p\", b\"x\");\n}\n",
        );
        assert_eq!(f.guards.len(), 1);
        assert_eq!(f.guards[0].io.len(), 1, "{:?}", f.guards[0].io);
    }

    #[test]
    fn nested_acquisition_and_cycle() {
        let a = facts(
            "crates/x/src/a.rs",
            "//! d\nfn f() {\n    let g = A.lock();\n    let h = B.lock();\n    let _ = (g, h);\n}\n",
        );
        assert_eq!(a.guards[0].acquires.len(), 1);
        let b = facts(
            "crates/x/src/b.rs",
            "//! d\nfn g() {\n    let g = B.lock();\n    let h = A.lock();\n    let _ = (g, h);\n}\n",
        );
        let diags = aggregate(&[a, b]);
        let lints: Vec<&str> = diags.iter().map(|d| d.lint).collect();
        assert!(lints.contains(&"lock-nested"), "{lints:?}");
        assert!(lints.contains(&"lock-order"), "{lints:?}");
    }

    #[test]
    fn transitive_io_via_call_graph() {
        let a = facts(
            "crates/x/src/a.rs",
            "//! d\nfn read_all(p: &Path) -> String { fs::read_to_string(p).unwrap_or_default() }\n",
        );
        let b = facts(
            "crates/x/src/b.rs",
            "//! d\nfn f() {\n    let g = STATE.lock();\n    let s = read_all(\"p\");\n    let _ = (g, s);\n}\n",
        );
        let diags = aggregate(&[a, b]);
        assert!(
            diags
                .iter()
                .any(|d| d.lint == "lock-held-io" && d.message.contains("read_all")),
            "{diags:?}"
        );
    }

    #[test]
    fn dispatch_under_guard_fires() {
        let a = facts(
            "crates/x/src/a.rs",
            "//! d\nfn f(policy: &ExecPolicy) {\n    let g = STATE.lock();\n    let out = policy.map_chunks(&plan, |c| c.len());\n    let _ = (g, out);\n}\n",
        );
        let diags = aggregate(&[a]);
        assert!(
            diags.iter().any(|d| d.lint == "lock-held-dispatch"),
            "{diags:?}"
        );
    }

    #[test]
    fn guard_helper_call_is_an_acquisition() {
        let a = facts(
            "crates/x/src/a.rs",
            "//! d\nfn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> { m.lock().unwrap_or_else(|p| p.into_inner()) }\nfn f() {\n    let g = lock(&PLAN);\n    fs::write(\"p\", b\"x\");\n    let _ = g;\n}\n",
        );
        let hits: Vec<_> = a.guards.iter().filter(|g| g.lock == "PLAN").collect();
        assert_eq!(
            hits.len(),
            1,
            "{:?}",
            a.guards.iter().map(|g| &g.lock).collect::<Vec<_>>()
        );
        assert_eq!(hits[0].io.len(), 1);
    }

    #[test]
    fn crate_of_paths() {
        assert_eq!(crate_of("crates/engine/src/serve.rs"), "engine");
        assert_eq!(crate_of("src/main.rs"), "root");
    }
}
