//! Lexical source model: the preprocessing every lint runs on.
//!
//! [`SourceModel::parse`] makes one pass over a Rust source file and
//! produces, per line:
//!
//! * **code text** — the line with comments and string/char literals
//!   blanked out (replaced by spaces, so column numbers survive), which is
//!   what pattern lints match against;
//! * **comment text** — the concatenated comments of the line, which is
//!   where `bestk-analyze: allow(...)` suppressions and module docs live;
//! * **test flag** — whether the line sits inside a `#[cfg(test)]` item,
//!   tracked by brace depth.
//!
//! This is a lexer-level approximation, not a parser: precise enough for
//! policy lints over a codebase that compiles (rustc guarantees
//! well-formed tokens), and dependency-free, which the offline build
//! demands. Known approximations are documented on [`SourceModel::parse`].
//!
//! bestk-analyze: allow-file(bad-allow) — these docs quote the directive syntax

/// One analyzed line of source.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Code with comments and literals blanked (same length as the input).
    pub code: String,
    /// All comment text on the line (`//`, `///`, `//!`, and block
    /// comment fragments), concatenated.
    pub comment: String,
    /// True if the line starts inside a `#[cfg(test)]`-gated item.
    pub in_test: bool,
    /// True if the line's first non-whitespace token is an inner doc
    /// comment (`//!`).
    pub is_module_doc: bool,
}

/// The per-line analysis of one file.
#[derive(Debug, Default)]
pub struct SourceModel {
    /// Lines, 0-indexed (diagnostics report 1-indexed).
    pub lines: Vec<Line>,
}

/// Scanner state carried across characters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

impl SourceModel {
    /// Parses `text` into per-line code/comment/test-region views.
    ///
    /// Approximations (all conservative for the policy lints):
    /// * a `#[cfg(test)]` attribute marks the *next* braced item as test
    ///   code, whatever the cfg predicate's polarity — `#[cfg(not(test))]`
    ///   is treated as test-gated too (no such attribute exists in this
    ///   workspace);
    /// * char literals are recognized by a short lookahead, so lifetime
    ///   ticks (`'a`) never open a literal;
    /// * code inside macros is scanned like any other code.
    pub fn parse(text: &str) -> SourceModel {
        let bytes = text.as_bytes();
        let mut lines = Vec::new();
        let mut line = Line::default();
        let mut mode = Mode::Code;
        // Brace depth, and the depths at which `#[cfg(test)]` items opened.
        let mut depth: i64 = 0;
        let mut test_regions: Vec<i64> = Vec::new();
        // Set when `#[cfg(test)]` was seen and its item's `{` is pending.
        let mut pending_test_item = false;
        line.in_test = false;

        let mut i = 0usize;
        let n = bytes.len();
        while i < n {
            let c = bytes[i] as char;
            if c == '\n' {
                if matches!(mode, Mode::LineComment) {
                    mode = Mode::Code;
                }
                line.finish();
                lines.push(std::mem::take(&mut line));
                line.in_test = !test_regions.is_empty();
                i += 1;
                continue;
            }
            match mode {
                Mode::Code => {
                    if c == '/' && bytes.get(i + 1) == Some(&b'/') {
                        mode = Mode::LineComment;
                        line.code.push_str("  ");
                        line.comment.push_str("//");
                        i += 2;
                        continue;
                    }
                    if c == '/' && bytes.get(i + 1) == Some(&b'*') {
                        mode = Mode::BlockComment(1);
                        line.code.push_str("  ");
                        i += 2;
                        continue;
                    }
                    if c == '"' {
                        mode = Mode::Str;
                        line.code.push(' ');
                        i += 1;
                        continue;
                    }
                    // Raw strings: r"..." / r#"..."# / br##"..."## etc.
                    if (c == 'r' || c == 'b') && !prev_is_ident(&line.code) {
                        if let Some((hashes, consumed)) = raw_string_open(&bytes[i..]) {
                            mode = Mode::RawStr(hashes);
                            for _ in 0..consumed {
                                line.code.push(' ');
                            }
                            i += consumed;
                            continue;
                        }
                    }
                    if c == '\'' {
                        if let Some(len) = char_literal_len(&bytes[i..]) {
                            for _ in 0..len {
                                line.code.push(' ');
                            }
                            i += len;
                            continue;
                        }
                        // A lifetime tick: keep scanning as code.
                        line.code.push('\'');
                        i += 1;
                        continue;
                    }
                    if c == '{' {
                        if pending_test_item {
                            test_regions.push(depth);
                            pending_test_item = false;
                        }
                        depth += 1;
                    } else if c == '}' {
                        depth -= 1;
                        if test_regions.last().is_some_and(|&d| depth <= d) {
                            test_regions.pop();
                        }
                    }
                    line.code.push(c);
                    // Detect `#[cfg(test)]` (or any cfg attribute naming
                    // `test`) once the closing bracket lands on this line.
                    if c == ']' && line.code.contains("#[cfg(") {
                        let code = &line.code;
                        if let Some(start) = code.rfind("#[cfg(") {
                            let attr = &code[start..];
                            if attr.contains("test") {
                                pending_test_item = true;
                            }
                        }
                    }
                    i += 1;
                }
                Mode::LineComment => {
                    line.code.push(' ');
                    line.comment.push(c);
                    i += 1;
                }
                Mode::BlockComment(level) => {
                    if c == '*' && bytes.get(i + 1) == Some(&b'/') {
                        mode = if level == 1 {
                            Mode::Code
                        } else {
                            Mode::BlockComment(level - 1)
                        };
                        line.code.push_str("  ");
                        i += 2;
                    } else if c == '/' && bytes.get(i + 1) == Some(&b'*') {
                        mode = Mode::BlockComment(level + 1);
                        line.code.push_str("  ");
                        i += 2;
                    } else {
                        line.code.push(' ');
                        line.comment.push(c);
                        i += 1;
                    }
                }
                Mode::Str => {
                    if c == '\\' {
                        if bytes.get(i + 1) == Some(&b'\n') {
                            // Line-continuation escape: let the newline be
                            // handled by the top of the loop.
                            line.code.push(' ');
                            i += 1;
                        } else {
                            line.code.push_str("  ");
                            i += 2; // skip the escaped character (may be `"`)
                        }
                    } else if c == '"' {
                        mode = Mode::Code;
                        line.code.push(' ');
                        i += 1;
                    } else {
                        line.code.push(' ');
                        i += 1;
                    }
                }
                Mode::RawStr(hashes) => {
                    if c == '"' && closes_raw(&bytes[i..], hashes) {
                        mode = Mode::Code;
                        let consumed = 1 + hashes as usize;
                        for _ in 0..consumed {
                            line.code.push(' ');
                        }
                        i += consumed;
                    } else {
                        line.code.push(' ');
                        i += 1;
                    }
                }
            }
        }
        if !line.code.is_empty() || !line.comment.is_empty() {
            line.finish();
            lines.push(line);
        }
        SourceModel { lines }
    }
}

impl Line {
    /// Finalizes the derived flags once the line is complete: a module-doc
    /// line is a pure `//!` comment (blank code, comment opens with `//!`).
    fn finish(&mut self) {
        self.is_module_doc = self.code.trim().is_empty() && self.comment.starts_with("//!");
    }
}

/// True if the blanked code so far ends in an identifier character — used
/// to tell `r"..."`/`br"..."` raw-string openers from identifiers that
/// merely end in `r` or `b` (e.g. `var"` cannot occur in valid Rust).
fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .last()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Recognizes a raw-string opener (`r`, `br`, any number of `#`s, then
/// `"`); returns (hash count, bytes consumed through the quote).
fn raw_string_open(bytes: &[u8]) -> Option<(u32, usize)> {
    let mut i = 0usize;
    if bytes.get(i) == Some(&b'b') {
        i += 1;
    }
    if bytes.get(i) != Some(&b'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0u32;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) == Some(&b'"') {
        Some((hashes, i + 1))
    } else {
        None
    }
}

/// Whether a `"` at the head of `bytes` is followed by enough `#`s to close
/// a raw string opened with `hashes` hashes.
fn closes_raw(bytes: &[u8], hashes: u32) -> bool {
    let h = hashes as usize;
    bytes.len() > h && bytes[1..=h].iter().all(|&b| b == b'#')
}

/// Recognizes a char literal at the head of `bytes` (`'x'`, `'\n'`,
/// `'\x7f'`, `'\u{1F600}'`); returns its byte length, or `None` for a
/// lifetime tick.
fn char_literal_len(bytes: &[u8]) -> Option<usize> {
    if bytes.first() != Some(&b'\'') {
        return None;
    }
    if bytes.get(1) == Some(&b'\\') {
        // Escape: find the closing quote within a short window.
        for (j, &b) in bytes.iter().enumerate().skip(2).take(12) {
            if b == b'\'' {
                return Some(j + 1);
            }
        }
        return None;
    }
    // Unescaped: exactly one char (possibly multi-byte) then a quote.
    let s = std::str::from_utf8(bytes).ok()?;
    let mut chars = s.char_indices().skip(1);
    let (_, c) = chars.next()?;
    if c == '\'' {
        return None; // `''` is not a char literal
    }
    let (close_at, close) = chars.next()?;
    (close == '\'').then_some(close_at + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_blanked_and_captured() {
        let m = SourceModel::parse("let x = 1; // trailing note\n/* block */ let y = 2;\n");
        assert!(m.lines[0].code.contains("let x = 1;"));
        assert!(!m.lines[0].code.contains("trailing"));
        assert!(m.lines[0].comment.contains("trailing note"));
        assert!(m.lines[1].code.contains("let y = 2;"));
        assert!(!m.lines[1].code.contains("block"));
    }

    #[test]
    fn strings_are_blanked() {
        let m = SourceModel::parse("let s = \"panic! .unwrap() as u32\";\n");
        assert!(!m.lines[0].code.contains("panic!"));
        assert!(!m.lines[0].code.contains("unwrap"));
        assert!(m.lines[0].code.contains("let s ="));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let m = SourceModel::parse(
            "let a = r#\"quote \" inside .unwrap()\"#;\nlet b = \"esc \\\" .expect(\";\nlet c = 1;\n",
        );
        assert!(!m.lines[0].code.contains("unwrap"));
        assert!(!m.lines[1].code.contains("expect"));
        assert!(m.lines[2].code.contains("let c = 1;"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let m = SourceModel::parse("fn f<'a>(x: &'a str) { let c = '\\''; let d = 'x'; }\n");
        assert!(m.lines[0].code.contains("fn f<'a>(x: &'a str)"));
        assert!(!m.lines[0].code.contains("'x'"));
    }

    #[test]
    fn multiline_block_comment() {
        let m = SourceModel::parse("/* one\n .unwrap()\n two */ let x = 3;\n");
        assert!(!m.lines[1].code.contains("unwrap"));
        assert!(m.lines[1].comment.contains(".unwrap()"));
        assert!(m.lines[2].code.contains("let x = 3;"));
    }

    #[test]
    fn cfg_test_regions() {
        let src = "\
fn lib() { x.unwrap(); }

#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); }
}

fn lib2() {}
";
        let m = SourceModel::parse(src);
        assert!(!m.lines[0].in_test);
        assert!(m.lines[4].in_test, "inside cfg(test) mod");
        assert!(!m.lines[7].in_test, "after the test mod closes");
    }

    #[test]
    fn module_doc_detection() {
        let m = SourceModel::parse("//! Module docs.\n\nfn x() {}\n");
        assert!(m.lines[0].is_module_doc);
        assert!(!m.lines[2].is_module_doc);
    }
}
