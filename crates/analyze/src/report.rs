//! Diagnostic type and report rendering for `bestk-analyze`.
//!
//! Diagnostics render in the conventional `path:line: [lint] message`
//! shape so editors and CI log scrapers pick them up, followed by a
//! per-lint summary table.

use std::collections::BTreeMap;
use std::fmt;

/// One lint violation, anchored to a file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable lint id (see [`crate::lints::LINTS`]).
    pub lint: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// Stable fingerprint (16 hex digits), assigned by the workspace
    /// driver; empty for diagnostics produced by single-file entry points.
    pub fingerprint: String,
}

impl Diagnostic {
    /// Builds a diagnostic; `lint` must be a known id from the lint table.
    pub fn new(path: &str, line: usize, lint: &'static str, message: String) -> Self {
        Diagnostic {
            path: path.to_string(),
            line,
            lint,
            message,
            fingerprint: String::new(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.lint, self.message
        )
    }
}

/// Renders the full report: every diagnostic sorted by (path, line), then
/// a per-lint count summary and the verdict line.
pub fn render(diags: &[Diagnostic], files_checked: usize) -> String {
    let mut out = String::new();
    let mut sorted: Vec<&Diagnostic> = diags.iter().collect();
    sorted.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    for d in &sorted {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    if !diags.is_empty() {
        out.push('\n');
        let mut by_lint: BTreeMap<&str, usize> = BTreeMap::new();
        for d in diags {
            *by_lint.entry(d.lint).or_insert(0) += 1;
        }
        for (lint, count) in &by_lint {
            out.push_str(&format!("  {count:4}  {lint}\n"));
        }
        out.push('\n');
    }
    if diags.is_empty() {
        out.push_str(&format!(
            "bestk-analyze: {files_checked} files checked, no violations\n"
        ));
    } else {
        out.push_str(&format!(
            "bestk-analyze: {files_checked} files checked, {} violation{} found\n",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape() {
        let d = Diagnostic::new("crates/x/src/a.rs", 7, "no-unwrap", "bad".to_string());
        assert_eq!(d.to_string(), "crates/x/src/a.rs:7: [no-unwrap] bad");
    }

    #[test]
    fn render_sorts_and_summarizes() {
        let diags = vec![
            Diagnostic::new("b.rs", 2, "no-panic", "x".into()),
            Diagnostic::new("a.rs", 9, "no-unwrap", "y".into()),
            Diagnostic::new("a.rs", 1, "no-unwrap", "z".into()),
        ];
        let r = render(&diags, 3);
        let first = r.lines().next().unwrap_or("");
        assert!(first.starts_with("a.rs:1:"), "{r}");
        assert!(r.contains("   2  no-unwrap"), "{r}");
        assert!(r.contains("3 violations found"), "{r}");
    }

    #[test]
    fn render_clean() {
        let r = render(&[], 42);
        assert!(r.contains("42 files checked, no violations"));
    }
}
