//! Per-file determinism and hot-path arithmetic passes.
//!
//! These passes run over the [`FileModel`] token stream alongside the
//! pattern lints:
//!
//! * `nondet-iter` — iteration over a `HashMap`/`HashSet` binding.
//!   Membership tests and lookups are fine (hash containers are good at
//!   that); *iteration order* is what leaks randomness into output, so
//!   `.iter()`, `.keys()`, `.values()`, `.drain()`, `.into_iter()` and
//!   `for _ in map` on a known hash binding are flagged.
//! * `float-reduce` — float accumulation whose order is not pinned:
//!   `.sum::<f32/f64>()`, `.product::<..>()`, a bare `.sum()` in a
//!   float-annotated `let`, or `.fold(0.0, ..)`. Outside `crates/exec`
//!   (whose ordered merge is the blessed reduction point), float
//!   reductions must state their order or carry a reasoned allow.
//! * `raw-atomic` — `Atomic*` types and `fetch_*`/`compare_exchange`
//!   calls outside `crates/obs` and `crates/exec`. Ad-hoc atomics are
//!   how nondeterminism sneaks past the exec seam; a reasoned allow
//!   documents the disjoint-write or monotone invariant instead.
//! * `unchecked-arith` — raw `+`/`-`/`*` (and compound forms) where an
//!   operand is degree/offset/budget-named, inside the hot crates
//!   (`graph`, `core`, `engine`). Overflow there corrupts results
//!   silently in release builds; use `checked_`/`saturating_`/
//!   `wrapping_` or document why overflow is impossible.

use crate::model::FileModel;
use crate::report::Diagnostic;

/// Hash-container methods whose results depend on iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Atomic type names confined to the policed crates.
const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicUsize",
    "AtomicIsize",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
];

/// Atomic read-modify-write method names.
const ATOMIC_METHODS: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "fetch_max",
    "fetch_min",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Identifiers that end an operand search (keywords that can precede a
/// unary `-`/`*`/`&` without being an operand).
const NON_OPERAND_KEYWORDS: &[&str] = &[
    "return", "if", "else", "match", "in", "as", "while", "loop", "break", "continue", "let",
    "mut", "move", "ref", "for", "where", "impl", "dyn", "fn",
];

/// Runs the determinism passes (`nondet-iter`, `float-reduce`,
/// `raw-atomic`) over one file.
pub fn check_determinism(path: &str, m: &FileModel<'_>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    nondet_iter(path, m, &mut diags);
    if !path.starts_with("crates/exec/") {
        float_reduce(path, m, &mut diags);
    }
    if !path.starts_with("crates/obs/") && !path.starts_with("crates/exec/") {
        raw_atomic(path, m, &mut diags);
    }
    diags
}

/// Flags iteration over `HashMap`/`HashSet` bindings.
fn nondet_iter(path: &str, m: &FileModel<'_>, diags: &mut Vec<Diagnostic>) {
    let names = hash_bindings(m);
    if names.is_empty() {
        return;
    }
    for i in 0..m.len() {
        if m.sig_in_test(i) {
            continue;
        }
        let Some(name) = m.ident(i) else { continue };
        if !names.iter().any(|n| n == name) {
            continue;
        }
        let line = m.line(i);
        if m.allows.allowed("nondet-iter", line) {
            continue;
        }
        // `name.iter()` / `.keys()` / ... — an order-dependent method.
        if m.is_punct(i + 1, b'.') && m.is_punct(i + 3, b'(') {
            if let Some(method) = m.ident(i + 2) {
                if ITER_METHODS.contains(&method) {
                    diags.push(Diagnostic::new(
                        path,
                        line as usize,
                        "nondet-iter",
                        format!(
                            "iterating hash container `{name}` via `.{method}()` (order is nondeterministic; use a BTree container or sort first)"
                        ),
                    ));
                    continue;
                }
            }
        }
        // `for pat in [&[mut]] name` — direct iteration.
        let mut k = i;
        while k > 0 && (m.is_punct(k - 1, b'&') || m.is_ident(k - 1, "mut")) {
            k -= 1;
        }
        if k > 0 && m.is_ident(k - 1, "in") {
            diags.push(Diagnostic::new(
                path,
                line as usize,
                "nondet-iter",
                format!(
                    "iterating hash container `{name}` in a for-loop (order is nondeterministic; use a BTree container or sort first)"
                ),
            ));
        }
    }
}

/// Names bound to `HashMap`/`HashSet` in this file: `let` bindings,
/// struct fields, and fn parameters with a hash-typed annotation.
fn hash_bindings(m: &FileModel<'_>) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..m.len() {
        if !(m.is_ident(i, "HashMap") || m.is_ident(i, "HashSet")) {
            continue;
        }
        // Walk back to the statement/field boundary.
        let mut b = i;
        let mut steps = 0;
        while b > 0 && steps < 64 {
            let p = b - 1;
            if m.is_punct(p, b';')
                || m.is_punct(p, b'{')
                || m.is_punct(p, b'}')
                || m.is_punct(p, b',')
                || m.is_punct(p, b'(')
            {
                break;
            }
            b = p;
            steps += 1;
        }
        // `let [mut] name` ...
        if m.is_ident(b, "let") {
            let mut n = b + 1;
            if m.is_ident(n, "mut") {
                n += 1;
            }
            if let Some(name) = m.ident(n) {
                if name != "_" {
                    names.push(name.to_string());
                }
            }
            continue;
        }
        // `[pub] name: HashMap<..>` — a field or parameter.
        let mut n = b;
        if m.is_ident(n, "pub") {
            n += 1;
        }
        if let Some(name) = m.ident(n) {
            if m.is_punct(n + 1, b':') && !m.is_punct(n + 2, b':') {
                names.push(name.to_string());
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Flags float reductions whose order is not pinned.
fn float_reduce(path: &str, m: &FileModel<'_>, diags: &mut Vec<Diagnostic>) {
    for i in 0..m.len() {
        if m.sig_in_test(i) || !m.is_punct(i, b'.') {
            continue;
        }
        let Some(method) = m.ident(i + 1) else {
            continue;
        };
        let line = m.line(i + 1);
        if m.allows.allowed("float-reduce", line) {
            continue;
        }
        match method {
            "sum" | "product" => {
                // Turbofish: `.sum::<f64>()`.
                if m.is_punct(i + 2, b':')
                    && m.is_punct(i + 3, b':')
                    && m.is_punct(i + 4, b'<')
                    && (m.is_ident(i + 5, "f32") || m.is_ident(i + 5, "f64"))
                {
                    diags.push(Diagnostic::new(
                        path,
                        line as usize,
                        "float-reduce",
                        format!(
                            "float `.{method}::<{}>()` accumulates in iterator order (pin the order or route through bestk-exec's ordered merge)",
                            m.text(i + 5)
                        ),
                    ));
                    continue;
                }
                // Bare `.sum()` inside a float-annotated let statement.
                if m.is_punct(i + 2, b'(') && statement_mentions_float_let(m, i) {
                    diags.push(Diagnostic::new(
                        path,
                        line as usize,
                        "float-reduce",
                        format!(
                            "float `.{method}()` accumulates in iterator order (pin the order or route through bestk-exec's ordered merge)"
                        ),
                    ));
                }
            }
            // `.fold(0.0, ..)` — a float seed marks a float reduce.
            "fold" if m.is_punct(i + 2, b'(') => {
                let seed = i + 3;
                if seed < m.len() {
                    let t = m.text(seed);
                    let is_float_lit = matches!(m.tok(seed).kind, crate::lex::TokenKind::Number)
                        && (t.contains('.') || t.ends_with("f32") || t.ends_with("f64"));
                    if is_float_lit {
                        diags.push(Diagnostic::new(
                            path,
                            line as usize,
                            "float-reduce",
                            "float `.fold(..)` accumulates in iterator order (pin the order or route through bestk-exec's ordered merge)".to_string(),
                        ));
                    }
                }
            }
            _ => {}
        }
    }
}

/// True when the statement containing significant index `i` is a `let`
/// with an `f32`/`f64` mention before the reduce call.
fn statement_mentions_float_let(m: &FileModel<'_>, i: usize) -> bool {
    let mut b = i;
    let mut steps = 0;
    while b > 0 && steps < 64 {
        let p = b - 1;
        if m.is_punct(p, b';') || m.is_punct(p, b'{') || m.is_punct(p, b'}') {
            break;
        }
        b = p;
        steps += 1;
    }
    let mut saw_let = false;
    let mut saw_float = false;
    for k in b..i {
        if m.is_ident(k, "let") {
            saw_let = true;
        }
        if m.is_ident(k, "f32") || m.is_ident(k, "f64") {
            saw_float = true;
        }
    }
    saw_let && saw_float
}

/// Flags raw atomic types and RMW calls outside the policed crates.
fn raw_atomic(path: &str, m: &FileModel<'_>, diags: &mut Vec<Diagnostic>) {
    for i in 0..m.len() {
        if m.sig_in_test(i) {
            continue;
        }
        if let Some(name) = m.ident(i) {
            if ATOMIC_TYPES.contains(&name) {
                let line = m.line(i);
                if !m.allows.allowed("raw-atomic", line) {
                    diags.push(Diagnostic::new(
                        path,
                        line as usize,
                        "raw-atomic",
                        format!(
                            "`{name}` outside crates/obs and crates/exec (route through the policed seams or document the invariant)"
                        ),
                    ));
                }
                continue;
            }
        }
        if m.is_punct(i, b'.') && m.is_punct(i + 2, b'(') {
            if let Some(method) = m.ident(i + 1) {
                if ATOMIC_METHODS.contains(&method) {
                    let line = m.line(i + 1);
                    if !m.allows.allowed("raw-atomic", line) {
                        diags.push(Diagnostic::new(
                            path,
                            line as usize,
                            "raw-atomic",
                            format!(
                                "atomic `.{method}()` outside crates/obs and crates/exec (route through the policed seams or document the invariant)"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Runs the hot-path arithmetic pass (`unchecked-arith`) over one file.
/// Only the crates where degree/offset/budget overflow corrupts results
/// are in scope.
pub fn check_arith(path: &str, m: &FileModel<'_>) -> Vec<Diagnostic> {
    let hot = path.starts_with("crates/graph/")
        || path.starts_with("crates/core/")
        || path.starts_with("crates/engine/");
    if !hot {
        return Vec::new();
    }
    let mut diags = Vec::new();
    for i in 0..m.len() {
        if m.sig_in_test(i) {
            continue;
        }
        let op = match m.tok(i).kind {
            crate::lex::TokenKind::Punct(b'+') => '+',
            crate::lex::TokenKind::Punct(b'-') => '-',
            crate::lex::TokenKind::Punct(b'*') => '*',
            _ => continue,
        };
        // `->` is not arithmetic.
        if op == '-' && m.is_punct(i + 1, b'>') {
            continue;
        }
        let compound = m.is_punct(i + 1, b'=');
        // Binary only: the previous token must be an operand tail.
        let Some(left) = (i > 0).then(|| operand_left(m, i - 1)).flatten() else {
            continue;
        };
        let right_at = if compound { i + 2 } else { i + 1 };
        let right = operand_right(m, right_at);
        let watched = |n: &str| {
            let n = n.to_ascii_lowercase();
            n.contains("deg") || n.contains("offset") || n.contains("budget")
        };
        let name = if watched(left) {
            Some(left)
        } else {
            right.filter(|r| watched(r))
        };
        if let Some(name) = name {
            let line = m.line(i);
            if !m.allows.allowed("unchecked-arith", line) {
                diags.push(Diagnostic::new(
                    path,
                    line as usize,
                    "unchecked-arith",
                    format!(
                        "unchecked `{op}{}` on `{name}` (use checked_/saturating_/wrapping_ or add a reasoned allow)",
                        if compound { "=" } else { "" }
                    ),
                ));
            }
        }
    }
    diags
}

/// The identifier naming the left operand of a binary op whose last token
/// sits at `i`; `None` when `i` cannot end an operand (so the op is
/// unary) or the operand has no usable name.
fn operand_left<'a>(m: &'a FileModel<'_>, i: usize) -> Option<&'a str> {
    use crate::lex::TokenKind;
    match m.tok(i).kind {
        TokenKind::Ident => {
            let t = m.text(i);
            (!NON_OPERAND_KEYWORDS.contains(&t)).then_some(t)
        }
        TokenKind::Number => Some(""), // an operand, but unnamed
        TokenKind::Punct(b']') => {
            // `xs[k] + ..` — name the indexed base.
            let mut depth = 0i32;
            let mut j = i;
            loop {
                if m.is_punct(j, b']') {
                    depth += 1;
                } else if m.is_punct(j, b'[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    return Some("");
                }
                j -= 1;
            }
            (j > 0).then(|| m.ident(j - 1)).flatten().or(Some(""))
        }
        TokenKind::Punct(b')') => Some(""), // parenthesized operand, unnamed
        _ => None,
    }
}

/// The identifier naming the right operand starting at `i`.
fn operand_right<'a>(m: &'a FileModel<'_>, mut i: usize) -> Option<&'a str> {
    while m.is_punct(i, b'&') || m.is_ident(i, "mut") {
        i += 1;
    }
    let name = m.ident(i)?;
    (!NON_OPERAND_KEYWORDS.contains(&name)).then_some(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(path: &str, src: &str) -> Vec<Diagnostic> {
        check_determinism(path, &FileModel::parse(src))
    }

    fn arith(path: &str, src: &str) -> Vec<Diagnostic> {
        check_arith(path, &FileModel::parse(src))
    }

    fn lints_of(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.lint).collect()
    }

    #[test]
    fn hashmap_iteration_fires() {
        let src = "//! d\nfn f() {\n    let mut m: HashMap<u32, u32> = HashMap::new();\n    for (k, v) in &m { use_it(k, v); }\n}\n";
        let d = det("crates/x/src/a.rs", src);
        assert_eq!(lints_of(&d), vec!["nondet-iter"]);
        let src =
            "//! d\nfn f(m: &HashMap<u32, u32>) -> Vec<u32> { m.keys().copied().collect() }\n";
        let d = det("crates/x/src/a.rs", src);
        assert_eq!(lints_of(&d), vec!["nondet-iter"]);
    }

    #[test]
    fn hashmap_lookup_is_fine() {
        let src = "//! d\nfn f() {\n    let mut m: HashMap<u32, u32> = HashMap::new();\n    m.insert(1, 2);\n    let _ = m.get(&1);\n    let _ = m.contains_key(&1);\n}\n";
        assert!(det("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn btreemap_iteration_is_fine() {
        let src =
            "//! d\nfn f(m: &BTreeMap<u32, u32>) {\n    for (k, v) in m { use_it(k, v); }\n}\n";
        assert!(det("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn float_sum_turbofish_fires() {
        let src = "//! d\nfn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n";
        let d = det("crates/x/src/a.rs", src);
        assert_eq!(lints_of(&d), vec!["float-reduce"]);
    }

    #[test]
    fn float_let_sum_fires() {
        let src = "//! d\nfn f(xs: &[f64]) {\n    let total: f64 = xs.iter().sum();\n    let _ = total;\n}\n";
        let d = det("crates/x/src/a.rs", src);
        assert_eq!(lints_of(&d), vec!["float-reduce"]);
    }

    #[test]
    fn float_fold_fires_and_int_sum_is_fine() {
        let src = "//! d\nfn f(xs: &[f64]) -> f64 { xs.iter().fold(0.0, |a, b| a.max(*b)) }\n";
        let d = det("crates/x/src/a.rs", src);
        assert_eq!(lints_of(&d), vec!["float-reduce"]);
        let src = "//! d\nfn g(xs: &[usize]) -> usize { xs.iter().sum::<usize>() }\n";
        assert!(det("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn float_sum_in_exec_is_blessed() {
        let src = "//! d\nfn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n";
        assert!(det("crates/exec/src/merge.rs", src).is_empty());
    }

    #[test]
    fn raw_atomic_fires_outside_policed_crates() {
        let src = "//! d\nuse std::sync::atomic::AtomicUsize;\n";
        let d = det("crates/graph/src/a.rs", src);
        assert_eq!(lints_of(&d), vec!["raw-atomic"]);
        let src = "//! d\nfn f(c: &C) { c.n.fetch_add(1, Ordering::Relaxed); }\n";
        let d = det("crates/graph/src/a.rs", src);
        assert_eq!(lints_of(&d), vec!["raw-atomic"]);
    }

    #[test]
    fn raw_atomic_in_obs_and_exec_is_blessed() {
        let src = "//! d\nuse std::sync::atomic::AtomicU64;\n";
        assert!(det("crates/obs/src/registry.rs", src).is_empty());
        assert!(det("crates/exec/src/runtime.rs", src).is_empty());
    }

    #[test]
    fn raw_atomic_allow_comment_suppresses() {
        let src = "//! d\n// bestk-analyze: allow(raw-atomic) — disjoint writes, joined before read\nuse std::sync::atomic::AtomicUsize;\n";
        assert!(det("crates/graph/src/a.rs", src).is_empty());
    }

    #[test]
    fn unchecked_arith_on_degree_fires() {
        let src = "//! d\nfn f(degree: u32) -> u32 { degree + 1 }\n";
        let d = arith("crates/graph/src/a.rs", src);
        assert_eq!(lints_of(&d), vec!["unchecked-arith"]);
        let src = "//! d\nfn f(offsets: &mut [usize], k: usize) { offsets[k] -= 1; }\n";
        let d = arith("crates/graph/src/a.rs", src);
        assert_eq!(lints_of(&d), vec!["unchecked-arith"]);
    }

    #[test]
    fn unchecked_arith_ignores_cold_crates_and_other_names() {
        let src = "//! d\nfn f(degree: u32) -> u32 { degree + 1 }\n";
        assert!(arith("crates/apps/src/a.rs", src).is_empty());
        let src = "//! d\nfn f(count: u32) -> u32 { count + 1 }\n";
        assert!(arith("crates/graph/src/a.rs", src).is_empty());
    }

    #[test]
    fn checked_arith_and_unary_forms_are_fine() {
        let src = "//! d\nfn f(degree: u32) -> Option<u32> { degree.checked_add(1) }\n";
        assert!(arith("crates/graph/src/a.rs", src).is_empty());
        let src = "//! d\nfn f(x: i64) -> i64 { -x }\nfn g(p: &u32) -> u32 { *p }\n";
        assert!(arith("crates/graph/src/a.rs", src).is_empty());
    }

    #[test]
    fn trait_bounds_do_not_fire() {
        let src = "//! d\nfn f<T: Clone + Send>(t: T) -> T { t }\n";
        assert!(arith("crates/graph/src/a.rs", src).is_empty());
    }

    #[test]
    fn arith_allow_comment_suppresses() {
        let src = "//! d\n// bestk-analyze: allow(unchecked-arith) — degree bounded by vertex count\nfn f(degree: u32) -> u32 { degree + 1 }\n";
        assert!(arith("crates/graph/src/a.rs", src).is_empty());
    }
}
