//! CLI entry point for `bestk-analyze`.
//!
//! ```text
//! bestk-analyze check [--root <dir>] [--json] [--baseline <file>]
//! bestk-analyze baseline [--root <dir>]
//! bestk-analyze lints
//! ```
//!
//! `check` runs the full analysis. With `--baseline`, findings whose
//! fingerprints appear in the baseline file are tolerated; fresh findings
//! and *stale* baseline entries (entries matching nothing — the baseline
//! only shrinks) fail the run. With `--json` the machine-readable report
//! goes to stdout and the human summary to stderr.
//!
//! `baseline` prints current findings in baseline format with placeholder
//! reasons, as a starting point for hand-editing — entries are only valid
//! once a real reason replaces the placeholder.
//!
//! Exit codes: 0 clean, 1 violations or stale baseline, 2 usage or I/O
//! error.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
bestk-analyze — workspace static analysis for the bestk repository

USAGE:
    bestk-analyze check [--root <dir>] [--json] [--baseline <file>]
    bestk-analyze baseline [--root <dir>]
    bestk-analyze lints

Exit codes: 0 = clean, 1 = violations or stale baseline, 2 = usage or I/O error.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("bestk-analyze: error: {msg}");
            ExitCode::from(2)
        }
    }
}

struct CheckOpts {
    root: PathBuf,
    json: bool,
    baseline: Option<PathBuf>,
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return Ok(ExitCode::from(2));
    };
    match cmd.as_str() {
        "check" => {
            let opts = parse_check(&args[1..])?;
            check(&opts)
        }
        "baseline" => {
            let opts = parse_check(&args[1..])?;
            let report = analyze(&opts.root)?;
            print!(
                "{}",
                bestk_analyze::baseline::render_template(&report.diagnostics)
            );
            Ok(ExitCode::SUCCESS)
        }
        "lints" => {
            for (id, what) in bestk_analyze::lints::LINTS {
                println!("{id:20} {what}");
            }
            Ok(ExitCode::SUCCESS)
        }
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?} (try --help)")),
    }
}

fn analyze(root: &std::path::Path) -> Result<bestk_analyze::Report, String> {
    if !root.is_dir() {
        return Err(format!("root {} is not a directory", root.display()));
    }
    bestk_analyze::run_report(root).map_err(|e| format!("walking {}: {e}", root.display()))
}

fn check(opts: &CheckOpts) -> Result<ExitCode, String> {
    let report = analyze(&opts.root)?;

    let entries = match &opts.baseline {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading baseline {}: {e}", path.display()))?;
            bestk_analyze::baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?
        }
        None => Vec::new(),
    };
    let applied = bestk_analyze::baseline::apply(&report.diagnostics, &entries);
    let baselined_fps: BTreeSet<String> = applied
        .baselined
        .iter()
        .map(|d| d.fingerprint.clone())
        .collect();

    if opts.json {
        print!(
            "{}",
            bestk_analyze::json::render(&report.diagnostics, report.files_checked, &baselined_fps)
        );
    }

    // Human-readable view: fresh findings only (stderr under --json).
    let fresh: Vec<bestk_analyze::Diagnostic> =
        applied.fresh.iter().map(|d| (*d).clone()).collect();
    let mut human = bestk_analyze::report::render(&fresh, report.files_checked);
    if !applied.baselined.is_empty() {
        human.push_str(&format!(
            "bestk-analyze: {} baselined finding{} tolerated\n",
            applied.baselined.len(),
            if applied.baselined.len() == 1 {
                ""
            } else {
                "s"
            },
        ));
    }
    for e in &applied.stale {
        human.push_str(&format!(
            "bestk-analyze: stale baseline entry {} {} {} (finding is gone — remove the line; the baseline only shrinks)\n",
            e.fingerprint, e.lint, e.path
        ));
    }
    if opts.json {
        eprint!("{human}");
    } else {
        print!("{human}");
    }

    Ok(if applied.fresh.is_empty() && applied.stale.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

/// Parses `check`/`baseline` flags: `--root <dir>`, `--json`,
/// `--baseline <file>` (with `=` forms).
fn parse_check(args: &[String]) -> Result<CheckOpts, String> {
    let mut opts = CheckOpts {
        root: PathBuf::from("."),
        json: false,
        baseline: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(v) = a.strip_prefix("--root=") {
            opts.root = PathBuf::from(v);
        } else if a == "--root" {
            let v = it.next().ok_or("--root needs a value")?;
            opts.root = PathBuf::from(v);
        } else if let Some(v) = a.strip_prefix("--baseline=") {
            opts.baseline = Some(PathBuf::from(v));
        } else if a == "--baseline" {
            let v = it.next().ok_or("--baseline needs a value")?;
            opts.baseline = Some(PathBuf::from(v));
        } else if a == "--json" {
            opts.json = true;
        } else {
            return Err(format!("unknown argument {a:?}"));
        }
    }
    Ok(opts)
}
