//! CLI entry point for `bestk-analyze`.
//!
//! ```text
//! bestk-analyze check [--root <dir>]     run the lint pass (default root: cwd)
//! bestk-analyze lints                    list the lints and what they enforce
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
bestk-analyze — workspace lint pass for the bestk repository

USAGE:
    bestk-analyze check [--root <dir>]
    bestk-analyze lints

Exit codes: 0 = clean, 1 = violations, 2 = usage or I/O error.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("bestk-analyze: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return Ok(ExitCode::from(2));
    };
    match cmd.as_str() {
        "check" => {
            let root = parse_root(&args[1..])?;
            if !root.is_dir() {
                return Err(format!("root {} is not a directory", root.display()));
            }
            let (diags, files) = bestk_analyze::run(&root)
                .map_err(|e| format!("walking {}: {e}", root.display()))?;
            print!("{}", bestk_analyze::report::render(&diags, files));
            Ok(if diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            })
        }
        "lints" => {
            for (id, what) in bestk_analyze::lints::LINTS {
                println!("{id:14} {what}");
            }
            Ok(ExitCode::SUCCESS)
        }
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?} (try --help)")),
    }
}

/// Parses `--root <dir>` / `--root=<dir>`; defaults to the current
/// directory, which is the workspace root under `cargo run -p`.
fn parse_root(args: &[String]) -> Result<PathBuf, String> {
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(v) = a.strip_prefix("--root=") {
            root = Some(PathBuf::from(v));
        } else if a == "--root" {
            let v = it.next().ok_or("--root needs a value")?;
            root = Some(PathBuf::from(v));
        } else {
            return Err(format!("unknown argument {a:?}"));
        }
    }
    Ok(root.unwrap_or_else(|| PathBuf::from(".")))
}
