//! Stable diagnostic fingerprints.
//!
//! A fingerprint identifies a finding across reruns and unrelated edits:
//! it hashes the lint id, the file path, the *trimmed text* of the
//! offending line, and an occurrence index (for repeated identical lines
//! in one file) — but **not** the line number, so findings survive code
//! moving up or down the file. The hash is FNV-1a 64 rendered as 16 hex
//! digits: tiny, dependency-free, and stable across platforms.

/// FNV-1a 64-bit over `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Fingerprint of one finding: 16 lowercase hex digits.
pub fn fingerprint(lint: &str, path: &str, snippet: &str, occurrence: usize) -> String {
    let mut buf = Vec::with_capacity(lint.len() + path.len() + snippet.len() + 24);
    buf.extend_from_slice(lint.as_bytes());
    buf.push(0);
    buf.extend_from_slice(path.as_bytes());
    buf.push(0);
    buf.extend_from_slice(snippet.as_bytes());
    buf.push(0);
    buf.extend_from_slice(occurrence.to_string().as_bytes());
    format!("{:016x}", fnv1a64(&buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_across_calls() {
        let a = fingerprint("no-unwrap", "crates/x/src/a.rs", "x.unwrap();", 0);
        let b = fingerprint("no-unwrap", "crates/x/src/a.rs", "x.unwrap();", 0);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn inputs_separate() {
        let base = fingerprint("no-unwrap", "a.rs", "x.unwrap();", 0);
        assert_ne!(base, fingerprint("no-panic", "a.rs", "x.unwrap();", 0));
        assert_ne!(base, fingerprint("no-unwrap", "b.rs", "x.unwrap();", 0));
        assert_ne!(base, fingerprint("no-unwrap", "a.rs", "y.unwrap();", 0));
        assert_ne!(base, fingerprint("no-unwrap", "a.rs", "x.unwrap();", 1));
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a 64 of the empty string is the offset basis.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
