//! The findings baseline: legacy violations that are acknowledged,
//! reasoned about, and expected to burn down — never grow.
//!
//! Format, one finding per line:
//!
//! ```text
//! <fingerprint> <lint> <path> # <reason>
//! ```
//!
//! Blank lines and lines starting with `#` are comments. Every entry
//! *must* carry a reason after the `#` separator — a baseline entry is a
//! suppression, and suppressions in this workspace always say why.
//!
//! [`apply`] splits current findings into fresh (not in the baseline —
//! these fail the build) and baselined; entries matching no current
//! finding are *stale* and also fail the build, which is what enforces
//! the shrink-only rule: fixing a finding forces the entry's removal.

use std::collections::BTreeMap;

use crate::report::Diagnostic;

/// One parsed baseline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Finding fingerprint (16 hex digits).
    pub fingerprint: String,
    /// Lint id, for human readability and drift checks.
    pub lint: String,
    /// Repo-relative path, for human readability.
    pub path: String,
    /// Why this finding is acceptable for now.
    pub reason: String,
}

/// Parses baseline text. Errors name the offending line.
pub fn parse(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = i + 1;
        let (head, reason) = line
            .split_once('#')
            .ok_or_else(|| format!("baseline line {lineno}: missing `# <reason>`"))?;
        let reason = reason.trim();
        if reason.len() < 3 {
            return Err(format!(
                "baseline line {lineno}: entries must carry a substantive reason after `#`"
            ));
        }
        let mut parts = head.split_whitespace();
        let (Some(fp), Some(lint), Some(path), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "baseline line {lineno}: expected `<fingerprint> <lint> <path> # <reason>`"
            ));
        };
        if fp.len() != 16 || !fp.chars().all(|c| c.is_ascii_hexdigit()) {
            return Err(format!(
                "baseline line {lineno}: fingerprint must be 16 hex digits, got {fp:?}"
            ));
        }
        out.push(BaselineEntry {
            fingerprint: fp.to_string(),
            lint: lint.to_string(),
            path: path.to_string(),
            reason: reason.to_string(),
        });
    }
    Ok(out)
}

/// Result of matching current findings against a baseline.
pub struct Applied<'a> {
    /// Findings not covered by the baseline: these fail the build.
    pub fresh: Vec<&'a Diagnostic>,
    /// Findings covered by a baseline entry.
    pub baselined: Vec<&'a Diagnostic>,
    /// Baseline entries matching no current finding: stale, must be
    /// removed (the shrink-only rule).
    pub stale: Vec<&'a BaselineEntry>,
}

/// Splits `diags` against `entries` by fingerprint.
pub fn apply<'a>(diags: &'a [Diagnostic], entries: &'a [BaselineEntry]) -> Applied<'a> {
    let mut by_fp: BTreeMap<&str, &BaselineEntry> = BTreeMap::new();
    for e in entries {
        by_fp.insert(&e.fingerprint, e);
    }
    let mut fresh = Vec::new();
    let mut baselined = Vec::new();
    let mut used: BTreeMap<&str, bool> = entries
        .iter()
        .map(|e| (e.fingerprint.as_str(), false))
        .collect();
    for d in diags {
        if by_fp.contains_key(d.fingerprint.as_str()) {
            baselined.push(d);
            if let Some(u) = used.get_mut(d.fingerprint.as_str()) {
                *u = true;
            }
        } else {
            fresh.push(d);
        }
    }
    let stale = entries
        .iter()
        .filter(|e| !used.get(e.fingerprint.as_str()).copied().unwrap_or(false))
        .collect();
    Applied {
        fresh,
        baselined,
        stale,
    }
}

/// Renders findings as baseline lines, using the line snippet as the
/// placeholder reason — a starting point meant to be hand-edited.
pub fn render_template(diags: &[Diagnostic]) -> String {
    let mut out = String::from(
        "# bestk-analyze baseline — acknowledged findings, shrink-only.\n\
         # <fingerprint> <lint> <path> # <reason>\n",
    );
    for d in diags {
        out.push_str(&format!(
            "{} {} {} # TODO: justify — {}\n",
            d.fingerprint,
            d.lint,
            d.path,
            d.message.replace('\n', " ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(fp: &str, lint: &'static str) -> Diagnostic {
        let mut d = Diagnostic::new("crates/x/src/a.rs", 1, lint, "m".into());
        d.fingerprint = fp.to_string();
        d
    }

    #[test]
    fn parse_roundtrip() {
        let text = "# comment\n\n0123456789abcdef0 no-unwrap a.rs # legacy\n";
        assert!(
            parse(text).is_err(),
            "17-digit fingerprint must be rejected"
        );
        let text = "0123456789abcdef no-unwrap a.rs # legacy call site\n";
        let entries = parse(text).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].lint, "no-unwrap");
        assert_eq!(entries[0].reason, "legacy call site");
    }

    #[test]
    fn reasonless_entries_rejected() {
        assert!(parse("0123456789abcdef no-unwrap a.rs\n").is_err());
        assert!(parse("0123456789abcdef no-unwrap a.rs #\n").is_err());
        assert!(parse("0123456789abcdef no-unwrap a.rs # x\n").is_err());
    }

    #[test]
    fn apply_splits_fresh_baselined_stale() {
        let diags = vec![
            diag("aaaaaaaaaaaaaaaa", "no-unwrap"),
            diag("bbbbbbbbbbbbbbbb", "no-panic"),
        ];
        let entries = parse(
            "aaaaaaaaaaaaaaaa no-unwrap crates/x/src/a.rs # acknowledged legacy\n\
             cccccccccccccccc no-panic crates/x/src/b.rs # fixed since then\n",
        )
        .unwrap();
        let a = apply(&diags, &entries);
        assert_eq!(a.fresh.len(), 1);
        assert_eq!(a.fresh[0].fingerprint, "bbbbbbbbbbbbbbbb");
        assert_eq!(a.baselined.len(), 1);
        assert_eq!(a.stale.len(), 1);
        assert_eq!(a.stale[0].fingerprint, "cccccccccccccccc");
    }
}
