//! Workspace file discovery for `bestk-analyze`.
//!
//! Walks `crates/*/src/**/*.rs` plus the workspace-root `src/` (the
//! umbrella crate) and `tests/` trees under a given root, returning
//! repo-relative paths. Implemented on plain `std::fs` — no walkdir/glob
//! dependency — with deterministic (sorted) output so reports are stable.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A discovered source file: its repo-relative display path and whether it
/// lives under a `tests/` tree (integration tests get the relaxed rules of
/// `#[cfg(test)]` code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// Absolute path on disk.
    pub abs_path: PathBuf,
    /// True for files under a `tests/` directory (integration tests).
    pub is_integration_test: bool,
}

/// Discovers every `.rs` file the lint pass covers, sorted by path:
/// `crates/<name>/src/**` and `crates/<name>/tests/**` for each crate
/// directory, plus the workspace root's own `src/` and `tests/`.
pub fn discover(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            collect_tree(root, &dir.join("src"), false, &mut out)?;
            collect_tree(root, &dir.join("tests"), true, &mut out)?;
            collect_tree(root, &dir.join("benches"), true, &mut out)?;
        }
    }
    collect_tree(root, &root.join("src"), false, &mut out)?;
    collect_tree(root, &root.join("tests"), true, &mut out)?;
    out.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(out)
}

/// Recursively collects `.rs` files under `dir` (silently skipping it if
/// absent).
fn collect_tree(
    root: &Path,
    dir: &Path,
    is_integration_test: bool,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_tree(root, &path, is_integration_test, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile {
                rel_path: rel,
                abs_path: path,
                is_integration_test,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovers_this_workspace() {
        // The analyze crate always runs from somewhere inside the repo;
        // resolve the workspace root relative to this crate's manifest.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .map(Path::to_path_buf);
        let Some(root) = root else { return };
        let files = discover(&root).expect("walk succeeds");
        let paths: Vec<&str> = files.iter().map(|f| f.rel_path.as_str()).collect();
        assert!(paths.contains(&"crates/graph/src/lib.rs"), "{paths:?}");
        assert!(paths.contains(&"crates/analyze/src/walk.rs"));
        let proptests = files
            .iter()
            .find(|f| f.rel_path == "tests/proptests.rs")
            .expect("umbrella tests discovered");
        assert!(proptests.is_integration_test);
        // Deterministic ordering.
        let mut sorted = paths.clone();
        sorted.sort();
        assert_eq!(paths, sorted);
    }

    #[test]
    fn missing_root_is_empty() {
        let files = discover(Path::new("/nonexistent-bestk-root")).expect("ok");
        assert!(files.is_empty());
    }
}
