//! The durable write-ahead delta log (`BESTKWAL1`).
//!
//! Layout: the 9-byte magic followed by length-framed, checksummed
//! records:
//!
//! ```text
//! file    := magic record*
//! magic   := "BESTKWAL1"
//! record  := len:u32le payload checksum:u64le     (checksum = fnv1a64(payload))
//! payload := 0x01 u:u32le v:u32le                 edge insert
//!          | 0x02 u:u32le v:u32le                 edge delete
//!          | 0x03                                 commit marker
//! ```
//!
//! Mutations are appended *before* they touch any in-memory state
//! (write-ahead); a `commit` appends the marker and `fsync`s, making every
//! record up to and including the marker durable. Replay applies ops only
//! up to the **last commit marker**: a torn tail — a partial record from a
//! mid-write crash, a flipped bit, or staged-but-uncommitted ops — is
//! detected by the length frame + checksum and discarded, never applied
//! and never a panic. Compaction (after the ops are folded into the next
//! snapshot) truncates the log back to its magic header.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use bestk_faults::sites;
use bestk_graph::generators::EdgeOp;

use crate::DeltaError;

/// Magic bytes opening every delta log.
pub const WAL_MAGIC: &[u8; 9] = b"BESTKWAL1";

const OP_INSERT: u8 = 0x01;
const OP_DELETE: u8 = 0x02;
const OP_COMMIT: u8 = 0x03;
/// Largest well-formed payload (op byte + two vertex ids).
const MAX_PAYLOAD: usize = 9;

/// FNV-1a 64-bit, the workspace's checksum for framed records. Local copy:
/// `bestk-delta` sits below the engine (which has its own), and the
/// function is eight lines of arithmetic, not a dependency.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn encode_payload(op: &EdgeOp) -> Vec<u8> {
    let (tag, (u, v)) = match op {
        EdgeOp::Insert(..) => (OP_INSERT, op.endpoints()),
        EdgeOp::Delete(..) => (OP_DELETE, op.endpoints()),
    };
    let mut p = Vec::with_capacity(MAX_PAYLOAD);
    p.push(tag);
    p.extend_from_slice(&u.to_le_bytes());
    p.extend_from_slice(&v.to_le_bytes());
    p
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(4 + payload.len() + 8);
    rec.extend_from_slice(&bestk_graph::cast::u32_of(payload.len()).to_le_bytes());
    rec.extend_from_slice(payload);
    rec.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    rec
}

/// The outcome of scanning a delta log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replay {
    /// Ops covered by a commit marker, in append order — the only ops a
    /// loader may apply.
    pub ops: Vec<EdgeOp>,
    /// Byte length of the committed prefix (magic through the last commit
    /// marker); everything past it is torn or uncommitted and gets
    /// truncated by [`DeltaLog::open`].
    pub committed_len: u64,
    /// Whether bytes past the committed prefix were discarded (a torn
    /// record or staged-but-uncommitted ops).
    pub torn_tail: bool,
}

/// Scans the log at `path` without modifying it. A missing file is an
/// empty replay; a file that does not start with the magic is a
/// [`DeltaError::BadLog`] (quarantine material — it is not a delta log at
/// all). Torn or uncommitted tails stop the scan cleanly.
pub fn replay_path<P: AsRef<Path>>(path: P) -> Result<Replay, DeltaError> {
    let _span = bestk_obs::span!("phase.delta.replay");
    if let Some(e) = bestk_faults::io_error(sites::DELTA_WAL_REPLAY) {
        return Err(DeltaError::Io(e));
    }
    let bytes = match std::fs::read(path.as_ref()) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(Replay {
                ops: Vec::new(),
                committed_len: WAL_MAGIC.len() as u64,
                torn_tail: false,
            })
        }
        Err(e) => return Err(DeltaError::Io(e)),
    };
    replay_bytes(&bytes)
}

/// [`replay_path`] over an in-memory image (the torn-write drills feed
/// every truncation prefix through this).
pub fn replay_bytes(bytes: &[u8]) -> Result<Replay, DeltaError> {
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(DeltaError::BadLog(
            "missing BESTKWAL1 magic (not a delta log)".into(),
        ));
    }
    let mut ops = Vec::new();
    let mut pending: Vec<EdgeOp> = Vec::new();
    let mut off = WAL_MAGIC.len();
    let mut committed_len = off as u64;
    while let Some(len_bytes) = bytes.get(off..off + 4) {
        let len =
            u32::from_le_bytes([len_bytes[0], len_bytes[1], len_bytes[2], len_bytes[3]]) as usize;
        if len == 0 || len > MAX_PAYLOAD {
            break;
        }
        let Some(payload) = bytes.get(off + 4..off + 4 + len) else {
            break;
        };
        let Some(sum_bytes) = bytes.get(off + 4 + len..off + 4 + len + 8) else {
            break;
        };
        let mut sum = [0u8; 8];
        sum.copy_from_slice(sum_bytes);
        if u64::from_le_bytes(sum) != fnv1a64(payload) {
            break;
        }
        off += 4 + len + 8;
        match (payload[0], payload.len()) {
            (OP_COMMIT, 1) => {
                ops.append(&mut pending);
                committed_len = off as u64;
            }
            (tag @ (OP_INSERT | OP_DELETE), 9) => {
                let u = u32::from_le_bytes([payload[1], payload[2], payload[3], payload[4]]);
                let v = u32::from_le_bytes([payload[5], payload[6], payload[7], payload[8]]);
                pending.push(if tag == OP_INSERT {
                    EdgeOp::Insert(u, v)
                } else {
                    EdgeOp::Delete(u, v)
                });
            }
            _ => break,
        }
    }
    let torn_tail = (bytes.len() as u64) > committed_len;
    Ok(Replay {
        ops,
        committed_len,
        torn_tail,
    })
}

/// Locates the first byte-level damage in a log image: the offset of the
/// first record that fails to frame or verify, together with the fnv1a64
/// of everything from that offset on (a broken frame makes the record's
/// own length unknowable, so the checksum covers the whole suspect
/// suffix). Missing magic is damage at offset 0. `None` when every byte
/// belongs to a well-formed record — a log can still be quarantined for
/// *semantic* reasons (committed ops that no longer apply), just not
/// because of these bytes.
pub fn first_bad_record(bytes: &[u8]) -> Option<(u64, u64)> {
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Some((0, fnv1a64(bytes)));
    }
    let mut off = WAL_MAGIC.len();
    loop {
        if off == bytes.len() {
            return None;
        }
        // Mirrors the `replay_bytes` scan, but reports the *start* of the
        // record that failed instead of stopping silently.
        let Some(len_bytes) = bytes.get(off..off + 4) else {
            break;
        };
        let len =
            u32::from_le_bytes([len_bytes[0], len_bytes[1], len_bytes[2], len_bytes[3]]) as usize;
        if len == 0 || len > MAX_PAYLOAD {
            break;
        }
        let Some(payload) = bytes.get(off + 4..off + 4 + len) else {
            break;
        };
        let Some(sum_bytes) = bytes.get(off + 4 + len..off + 4 + len + 8) else {
            break;
        };
        let mut sum = [0u8; 8];
        sum.copy_from_slice(sum_bytes);
        if u64::from_le_bytes(sum) != fnv1a64(payload) {
            break;
        }
        match (payload[0], len) {
            (OP_COMMIT, 1) | (OP_INSERT | OP_DELETE, 9) => {}
            _ => break,
        }
        off += 4 + len + 8;
    }
    Some((off as u64, fnv1a64(&bytes[off..])))
}

/// An open, append-positioned delta log.
///
/// Plain struct, no interior locking: the engine owns the handle inside
/// its registry slot and takes it out of the slot before doing I/O, so
/// the registry lock is never held across an append or fsync.
#[derive(Debug)]
pub struct DeltaLog {
    file: File,
    path: PathBuf,
    /// Acknowledged length: magic plus every record whose append returned
    /// `Ok`. Torn bytes from a failed append sit past this and are cut
    /// back before the next write.
    bytes: u64,
    /// A failed append left unacknowledged bytes on disk; heal (truncate
    /// back to `bytes`) before writing again so one torn record cannot
    /// poison every later one.
    dirty: bool,
}

impl DeltaLog {
    /// Opens (creating if absent) the log at `path`, replays its committed
    /// prefix, truncates any torn or uncommitted tail, and returns the
    /// handle positioned at the end together with the committed ops.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<(DeltaLog, Vec<EdgeOp>), DeltaError> {
        let path = path.as_ref().to_path_buf();
        let replay = replay_path(&path)?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(DeltaError::Io)?;
        let mut header = [0u8; 9];
        let fresh = match file.read(&mut header) {
            Ok(n) => n < WAL_MAGIC.len(),
            Err(e) => return Err(DeltaError::Io(e)),
        };
        if fresh {
            file.set_len(0).map_err(DeltaError::Io)?;
            file.write_all(WAL_MAGIC).map_err(DeltaError::Io)?;
            file.sync_all().map_err(DeltaError::Io)?;
        } else {
            file.set_len(replay.committed_len).map_err(DeltaError::Io)?;
        }
        let bytes = file.seek(SeekFrom::End(0)).map_err(DeltaError::Io)?;
        let log = DeltaLog {
            file,
            path,
            bytes,
            dirty: false,
        };
        log.record_bytes_gauge();
        Ok((log, replay.ops))
    }

    /// Appends one mutation record (write-ahead, *not* yet durable — see
    /// [`commit`](Self::commit)). An injected truncation persists a torn
    /// record and then fails, exactly like a mid-write crash.
    pub fn append(&mut self, op: &EdgeOp) -> Result<(), DeltaError> {
        if let Some(e) = bestk_faults::io_error(sites::DELTA_WAL_APPEND) {
            return Err(DeltaError::Io(e));
        }
        self.heal()?;
        let mut rec = frame(&encode_payload(op));
        // Roll the mid-write-crash interpretation of `truncate` before the
        // buffer-corruption helper (which accepts the same fault kind and
        // would otherwise swallow the roll by shortening `rec` in memory).
        if let Some(keep) = bestk_faults::truncation(sites::DELTA_WAL_APPEND, rec.len()) {
            self.file.write_all(&rec[..keep]).map_err(DeltaError::Io)?;
            self.dirty = true;
            return Err(DeltaError::Io(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "injected mid-append crash",
            )));
        }
        bestk_faults::corrupt_buffer(sites::DELTA_WAL_APPEND, &mut rec);
        self.file.write_all(&rec).map_err(DeltaError::Io)?;
        self.bytes += rec.len() as u64;
        self.record_bytes_gauge();
        Ok(())
    }

    /// Appends the commit marker and `fsync`s: everything appended so far
    /// becomes durable and replayable.
    pub fn commit(&mut self) -> Result<(), DeltaError> {
        if let Some(e) = bestk_faults::io_error(sites::DELTA_WAL_APPEND) {
            return Err(DeltaError::Io(e));
        }
        self.heal()?;
        let rec = frame(&[OP_COMMIT]);
        self.file.write_all(&rec).map_err(DeltaError::Io)?;
        self.file.sync_all().map_err(DeltaError::Io)?;
        self.bytes += rec.len() as u64;
        self.record_bytes_gauge();
        Ok(())
    }

    /// Cuts unacknowledged bytes from a previously failed append. If the
    /// process had crashed instead, replay's torn-tail trim does this job.
    fn heal(&mut self) -> Result<(), DeltaError> {
        if self.dirty {
            self.file.set_len(self.bytes).map_err(DeltaError::Io)?;
            self.file
                .seek(SeekFrom::Start(self.bytes))
                .map_err(DeltaError::Io)?;
            self.dirty = false;
        }
        Ok(())
    }

    /// Compaction: the committed ops have been folded into a fresh
    /// snapshot, so the log shrinks back to its magic header.
    pub fn reset(&mut self) -> Result<(), DeltaError> {
        self.file
            .set_len(WAL_MAGIC.len() as u64)
            .map_err(DeltaError::Io)?;
        self.file.seek(SeekFrom::End(0)).map_err(DeltaError::Io)?;
        self.file.sync_all().map_err(DeltaError::Io)?;
        self.bytes = WAL_MAGIC.len() as u64;
        self.dirty = false;
        self.record_bytes_gauge();
        Ok(())
    }

    /// Current on-disk length in bytes (header included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn record_bytes_gauge(&self) {
        bestk_obs::gauge("delta.wal_bytes").set(self.bytes as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bestk-delta-wal-{tag}-{}", std::process::id()));
        p
    }

    #[test]
    fn round_trips_committed_ops() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let ops = [
            EdgeOp::Insert(0, 1),
            EdgeOp::Delete(3, 7),
            EdgeOp::Insert(2, 5),
        ];
        {
            let (mut log, replayed) = DeltaLog::open(&path).unwrap();
            assert!(replayed.is_empty());
            for op in &ops[..2] {
                log.append(op).unwrap();
            }
            log.commit().unwrap();
            log.append(&ops[2]).unwrap();
            log.commit().unwrap();
        }
        let replay = replay_path(&path).unwrap();
        assert_eq!(replay.ops, ops);
        assert!(!replay.torn_tail);
        let (log, replayed) = DeltaLog::open(&path).unwrap();
        assert_eq!(replayed, ops);
        assert_eq!(log.bytes(), replay.committed_len);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn uncommitted_tail_is_discarded() {
        let path = temp_path("uncommitted");
        let _ = std::fs::remove_file(&path);
        {
            let (mut log, _) = DeltaLog::open(&path).unwrap();
            log.append(&EdgeOp::Insert(1, 2)).unwrap();
            log.commit().unwrap();
            log.append(&EdgeOp::Insert(8, 9)).unwrap();
            // No commit: the last record must not replay.
        }
        let replay = replay_path(&path).unwrap();
        assert_eq!(replay.ops, vec![EdgeOp::Insert(1, 2)]);
        assert!(replay.torn_tail);
        let (log, replayed) = DeltaLog::open(&path).unwrap();
        assert_eq!(replayed, vec![EdgeOp::Insert(1, 2)]);
        assert_eq!(log.bytes(), replay.committed_len);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn every_truncation_prefix_replays_cleanly() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (mut log, _) = DeltaLog::open(&path).unwrap();
            for i in 0..10u32 {
                log.append(&EdgeOp::Insert(i, i + 1)).unwrap();
                if i % 3 == 2 {
                    log.commit().unwrap();
                }
            }
        }
        let full = std::fs::read(&path).unwrap();
        let all = replay_bytes(&full).unwrap();
        for cut in WAL_MAGIC.len()..full.len() {
            let replay = replay_bytes(&full[..cut]).unwrap();
            assert!(replay.ops.len() <= all.ops.len(), "cut={cut}");
            assert_eq!(replay.ops, all.ops[..replay.ops.len()], "cut={cut}");
            assert!(replay.committed_len <= cut as u64, "cut={cut}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_record_stops_the_scan_at_the_last_good_marker() {
        let path = temp_path("bitflip");
        let _ = std::fs::remove_file(&path);
        {
            let (mut log, _) = DeltaLog::open(&path).unwrap();
            log.append(&EdgeOp::Insert(1, 2)).unwrap();
            log.commit().unwrap();
            log.append(&EdgeOp::Insert(3, 4)).unwrap();
            log.commit().unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let committed_first = {
            // Flip a payload bit inside the second insert record.
            let pos = bytes.len() - 20;
            bytes[pos] ^= 0x40;
            replay_bytes(&bytes).unwrap()
        };
        assert_eq!(committed_first.ops, vec![EdgeOp::Insert(1, 2)]);
        assert!(committed_first.torn_tail);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn a_torn_append_heals_before_the_next_write() {
        use bestk_faults::{sites, Fault, FaultPlan, SiteSpec};
        let path = temp_path("heal");
        let _ = std::fs::remove_file(&path);
        let (mut log, _) = DeltaLog::open(&path).unwrap();
        log.append(&EdgeOp::Insert(0, 1)).unwrap();
        log.commit().unwrap();
        let plan = FaultPlan::new(3).site(
            sites::DELTA_WAL_APPEND,
            SiteSpec::always(Fault::Truncate).with_budget(1),
        );
        bestk_faults::with_plan(&plan, || {
            assert!(log.append(&EdgeOp::Insert(2, 3)).is_err());
        });
        // Any torn bytes sit past the acknowledged length (the injected
        // cut may keep zero bytes, so equality is possible)...
        assert!(std::fs::metadata(&path).unwrap().len() >= log.bytes());
        // ...and the next append cuts them before writing.
        log.append(&EdgeOp::Insert(4, 5)).unwrap();
        log.commit().unwrap();
        drop(log);
        let replay = replay_path(&path).unwrap();
        assert_eq!(replay.ops, vec![EdgeOp::Insert(0, 1), EdgeOp::Insert(4, 5)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn non_wal_bytes_are_a_typed_error() {
        assert!(matches!(
            replay_bytes(b"definitely not a log"),
            Err(DeltaError::BadLog(_))
        ));
        assert!(matches!(replay_bytes(b""), Err(DeltaError::BadLog(_))));
    }

    #[test]
    fn first_bad_record_pinpoints_the_damage() {
        // Not a log at all: damage at offset 0, checksum over everything.
        let junk = b"not a delta log at all";
        assert_eq!(first_bad_record(junk), Some((0, fnv1a64(junk))));
        assert_eq!(first_bad_record(b""), Some((0, fnv1a64(b""))));

        // A clean log (committed or not) has no bad record.
        let mut clean = WAL_MAGIC.to_vec();
        clean.extend_from_slice(&frame(&encode_payload(&EdgeOp::Insert(1, 2))));
        clean.extend_from_slice(&frame(&[OP_COMMIT]));
        assert_eq!(first_bad_record(&clean), None);
        assert_eq!(first_bad_record(WAL_MAGIC), None);

        // Corrupt the second record's payload: the report points at that
        // record's frame start and hashes the suffix from there.
        let mut bytes = clean.clone();
        bytes.extend_from_slice(&frame(&encode_payload(&EdgeOp::Delete(3, 4))));
        let second = clean.len();
        bytes[second + 5] ^= 0x01;
        assert_eq!(
            first_bad_record(&bytes),
            Some((second as u64, fnv1a64(&bytes[second..])))
        );

        // An alien tag with a *valid* checksum is still a bad record.
        let mut alien = clean.clone();
        alien.extend_from_slice(&frame(&[0x7f]));
        assert_eq!(
            first_bad_record(&alien),
            Some((second as u64, fnv1a64(&alien[second..])))
        );
    }

    #[test]
    fn reset_shrinks_to_the_header() {
        let path = temp_path("reset");
        let _ = std::fs::remove_file(&path);
        let (mut log, _) = DeltaLog::open(&path).unwrap();
        log.append(&EdgeOp::Insert(0, 1)).unwrap();
        log.commit().unwrap();
        log.reset().unwrap();
        assert_eq!(log.bytes(), WAL_MAGIC.len() as u64);
        log.append(&EdgeOp::Insert(5, 6)).unwrap();
        log.commit().unwrap();
        drop(log);
        let replay = replay_path(&path).unwrap();
        assert_eq!(replay.ops, vec![EdgeOp::Insert(5, 6)]);
        std::fs::remove_file(&path).unwrap();
    }
}
