//! Incremental best-k maintenance under edge streams.
//!
//! The paper's pipeline (peel → order/tags → sweep) answers best-k queries
//! over an *immutable* graph. This crate makes the index live under
//! single-edge inserts and deletes, in three layers:
//!
//! * [`overlay`] — [`DeltaOverlay`], the only mutable graph form in the
//!   workspace: validated pending ops over any immutable [`GraphView`]
//!   backend, materialized back into canonical CSR at commit time.
//! * [`index`] — [`DeltaIndex`], the maintained pipeline state: coreness,
//!   shell order, Alg. 1 tags, and Alg. 2 primaries, repaired per op in
//!   time proportional to the affected region and bit-identical to a
//!   from-scratch rebuild.
//! * [`wal`] — [`DeltaLog`], the durable write-ahead delta log: staged ops
//!   are checksummed and length-framed on disk, committed with an fsync'd
//!   marker, replayed on load, and compacted into the next snapshot.
//!
//! [`GraphView`]: bestk_graph::GraphView

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod index;
pub mod overlay;
pub mod wal;

pub use index::{ApplyStats, DeltaIndex};
pub use overlay::DeltaOverlay;
pub use wal::{first_bad_record, replay_bytes, replay_path, DeltaLog, Replay, WAL_MAGIC};

/// Failures from staging, applying, or replaying edge mutations.
#[derive(Debug)]
pub enum DeltaError {
    /// An I/O failure against the write-ahead log.
    Io(std::io::Error),
    /// A semantically invalid op (self-loop, out-of-range endpoint,
    /// duplicate insert, delete of an absent edge). The index is untouched.
    BadOp(String),
    /// The on-disk log is not a delta log at all (bad magic) — as opposed
    /// to a torn tail, which replay trims silently.
    BadLog(String),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::Io(e) => write!(f, "delta log i/o failure: {e}"),
            DeltaError::BadOp(msg) => write!(f, "invalid edge op: {msg}"),
            DeltaError::BadLog(msg) => write!(f, "unreadable delta log: {msg}"),
        }
    }
}

impl std::error::Error for DeltaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeltaError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DeltaError {
    fn from(e: std::io::Error) -> DeltaError {
        DeltaError::Io(e)
    }
}
