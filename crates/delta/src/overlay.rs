//! [`DeltaOverlay`]: pending edge mutations layered over an immutable base.
//!
//! Every storage backend in the workspace is immutable by design; the
//! overlay is the *only* mutable graph form. It validates and buffers
//! [`EdgeOp`]s on top of any [`GraphView`] (canonical CSR, succinct CSR,
//! or a mapped snapshot view), observes as a [`GraphView`] itself with the
//! same sorted-by-id neighbor order, and materializes back into a
//! canonical [`CsrGraph`] at commit time.
//!
//! Only vertices that were actually touched carry a patched adjacency
//! list; untouched vertices read straight through to the base, so an
//! overlay with a handful of pending ops costs `O(touched degree)` heap on
//! top of the base.

use std::collections::BTreeMap;

use bestk_graph::generators::EdgeOp;
use bestk_graph::{cast, CsrGraph, GraphBuilder, GraphView, Neighbors, VertexId};

use crate::DeltaError;

/// Pending edge inserts/deletes over an immutable base graph.
#[derive(Debug, Clone)]
pub struct DeltaOverlay<G: GraphView> {
    base: G,
    /// Applied ops in order (replayed into the WAL / the delta index).
    ops: Vec<EdgeOp>,
    /// Sorted-by-id adjacency for every touched vertex.
    patched: BTreeMap<VertexId, Vec<VertexId>>,
    /// Degree prefix sums over the overlaid graph, length `n + 1`;
    /// rebuilt eagerly on apply so reads stay `O(1)`.
    offsets: Vec<usize>,
    m: usize,
}

impl<G: GraphView> DeltaOverlay<G> {
    /// An overlay with no pending ops.
    pub fn new(base: G) -> DeltaOverlay<G> {
        let offsets = base.degree_offsets();
        let m = base.num_edges();
        DeltaOverlay {
            base,
            ops: Vec::new(),
            patched: BTreeMap::new(),
            offsets,
            m,
        }
    }

    /// The base this overlay patches.
    pub fn base(&self) -> &G {
        &self.base
    }

    /// Applied-but-uncommitted ops, in application order.
    pub fn pending(&self) -> &[EdgeOp] {
        &self.ops
    }

    /// Validates and applies one mutation. Rejected ops (self-loops,
    /// out-of-range ids, duplicate inserts, deletes of absent edges) leave
    /// the overlay untouched.
    pub fn apply(&mut self, op: EdgeOp) -> Result<(), DeltaError> {
        let (u, v) = op.endpoints();
        let n = self.num_vertices();
        if u == v {
            return Err(DeltaError::BadOp(format!("self-loop on vertex {u}")));
        }
        if (u as usize) >= n || (v as usize) >= n {
            return Err(DeltaError::BadOp(format!(
                "edge ({u}, {v}) out of range for {n} vertices"
            )));
        }
        let present = self.has_edge(u, v);
        match op {
            EdgeOp::Insert(..) if present => {
                return Err(DeltaError::BadOp(format!(
                    "edge ({u}, {v}) already present"
                )))
            }
            EdgeOp::Delete(..) if !present => {
                return Err(DeltaError::BadOp(format!("edge ({u}, {v}) not present")))
            }
            _ => {}
        }
        for (a, b) in [(u, v), (v, u)] {
            // First touch snapshots the base adjacency (disjoint field
            // borrow: `base` is read while `patched` is written).
            let base = &self.base;
            let list = self
                .patched
                .entry(a)
                .or_insert_with(|| base.neighbors(a).collect());
            match list.binary_search(&b) {
                Ok(i) if !op.is_insert() => {
                    list.remove(i);
                }
                Err(i) if op.is_insert() => list.insert(i, b),
                // Membership was validated above; the patched lists agree
                // with `has_edge` by construction.
                _ => unreachable!("overlay membership drifted from has_edge"),
            }
        }
        if op.is_insert() {
            self.m += 1;
        } else {
            self.m -= 1;
        }
        self.rebuild_offsets();
        self.ops.push(op);
        Ok(())
    }

    /// Materializes the overlaid graph as a canonical [`CsrGraph`].
    pub fn materialize(&self) -> CsrGraph {
        let mut b = GraphBuilder::with_capacity(self.m);
        b.reserve_vertices(self.num_vertices());
        for u in self.vertices() {
            for v in self.neighbors(u) {
                if u < v {
                    b.add_edge(u, v);
                }
            }
        }
        b.build()
    }

    fn rebuild_offsets(&mut self) {
        let n = self.offsets.len() - 1;
        let mut acc = 0usize;
        for v in 0..n {
            self.offsets[v] = acc;
            acc += self.degree(cast::vertex_id(v));
        }
        self.offsets[n] = acc;
    }
}

impl<G: GraphView> GraphView for DeltaOverlay<G> {
    fn num_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    fn num_edges(&self) -> usize {
        self.m
    }

    fn degree(&self, v: VertexId) -> usize {
        match self.patched.get(&v) {
            Some(list) => list.len(),
            None => self.base.degree(v),
        }
    }

    fn neighbors(&self, v: VertexId) -> Neighbors<'_> {
        match self.patched.get(&v) {
            Some(list) => Neighbors::from_slice(list),
            None => self.base.neighbors(v),
        }
    }

    fn adjacency_start(&self, v: VertexId) -> usize {
        self.offsets[v as usize]
    }

    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        match self.patched.get(&u) {
            Some(list) => list.binary_search(&v).is_ok(),
            None => self.base.has_edge(u, v),
        }
    }

    fn degree_offsets(&self) -> Vec<usize> {
        self.offsets.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bestk_graph::generators;

    fn observations<G: GraphView>(g: &G) -> (usize, usize, Vec<Vec<VertexId>>, Vec<usize>) {
        (
            g.num_vertices(),
            g.num_edges(),
            g.vertices().map(|v| g.neighbors(v).collect()).collect(),
            g.degree_offsets(),
        )
    }

    #[test]
    fn overlay_observes_like_its_materialization() {
        let g = generators::erdos_renyi_gnm(40, 100, 5);
        let mut overlay = DeltaOverlay::new(&g);
        for op in generators::edge_stream_mixed(&g, 60, 9) {
            overlay.apply(op).unwrap();
        }
        let materialized = overlay.materialize();
        assert_eq!(observations(&overlay), observations(&materialized));
        for u in overlay.vertices() {
            for v in overlay.vertices() {
                assert_eq!(overlay.has_edge(u, v), materialized.has_edge(u, v));
            }
        }
    }

    #[test]
    fn empty_overlay_is_transparent() {
        let g = generators::paper_figure2();
        let overlay = DeltaOverlay::new(&g);
        assert_eq!(observations(&overlay), observations(&g));
        assert!(overlay.pending().is_empty());
    }

    #[test]
    fn invalid_ops_are_rejected_and_leave_no_trace() {
        let g = generators::paper_figure2();
        let mut overlay = DeltaOverlay::new(&g);
        let before = observations(&overlay);
        assert!(matches!(
            overlay.apply(EdgeOp::Insert(3, 3)),
            Err(DeltaError::BadOp(_))
        ));
        assert!(matches!(
            overlay.apply(EdgeOp::Insert(0, 99)),
            Err(DeltaError::BadOp(_))
        ));
        let (u, v) = g.edges().next().unwrap();
        assert!(matches!(
            overlay.apply(EdgeOp::Insert(u, v)),
            Err(DeltaError::BadOp(_))
        ));
        overlay.apply(EdgeOp::Delete(u, v)).unwrap();
        assert!(matches!(
            overlay.apply(EdgeOp::Delete(u, v)),
            Err(DeltaError::BadOp(_))
        ));
        overlay.apply(EdgeOp::Insert(u, v)).unwrap();
        assert_eq!(observations(&overlay), before);
        assert_eq!(overlay.pending().len(), 2);
    }

    #[test]
    fn insert_then_delete_round_trips_to_the_base() {
        let g = generators::regular::cycle(8);
        let mut overlay = DeltaOverlay::new(&g);
        overlay.apply(EdgeOp::Insert(0, 4)).unwrap();
        assert!(overlay.has_edge(0, 4));
        assert_eq!(overlay.num_edges(), g.num_edges() + 1);
        overlay.apply(EdgeOp::Delete(0, 4)).unwrap();
        assert_eq!(overlay.materialize(), g);
    }
}
