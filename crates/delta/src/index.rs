//! [`DeltaIndex`]: the paper's best-k index, maintained incrementally.
//!
//! A from-scratch pipeline run (peel → Alg. 1 order/tags → Alg. 2 sweep)
//! costs `O(m)` per query graph. This module keeps every piece of that
//! state — coreness, the `(coreness, id)` shell order, the per-vertex
//! `(same, plus, high)` position tags, and the per-`k` primary values —
//! valid across single-edge inserts and deletes in time proportional to
//! the *affected region*, not the graph:
//!
//! 1. **Coreness** (Montresor et al., `PAPERS.md`): an edge touching
//!    levels `r = min(c(u), c(v))` changes coreness only for vertices of
//!    coreness exactly `r`, each by at most 1, and only inside the
//!    *subcore* — the `c == r` connected region around the endpoints. The
//!    candidate search walks that region; a local peel (`cd(w) =
//!    |{x ∈ N(w): c(x) ≥ r}|`, cascading) decides who moves.
//! 2. **Order and tags**: the changed set `C` moves between two *adjacent*
//!    shells, so the `(coreness, id)` order is repaired with one span
//!    rewrite between two shell boundaries. Adjacency lists (kept in rank
//!    order, exactly the Alg. 1 scatter layout) and `(s, p, h)` tags are
//!    recomputed only for `{u, v} ∪ C ∪ N(C)`.
//! 3. **Primaries** (Alg. 2): the top-down sweep aggregates are seeded
//!    from the first clean level above `hi = max` of the endpoints' old
//!    and new coreness and re-run over `k = hi..0` only — the dirty range.
//!
//! Every structure is bit-identical to a from-scratch rebuild after every
//! op (`DeltaIndex` is `PartialEq` and the equivalence suite compares
//! whole values); the full pipeline stays in the tree as the oracle.

use bestk_core::bestkset::core_set_primaries;
use bestk_core::{
    core_decomposition, core_decomposition_with, BestKSet, CoreSetProfile, GraphContext, Metric,
    MetricError, OrderedGraph, PrimaryValues,
};
use bestk_exec::ExecPolicy;
use bestk_graph::generators::EdgeOp;
use bestk_graph::{cast, CsrGraph, GraphBuilder, GraphView, VertexId};

use crate::DeltaError;

/// What one applied op touched (observability + test assertions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplyStats {
    /// `|C|`: vertices whose coreness changed (by exactly 1).
    pub changed_vertices: usize,
    /// Number of `k`-levels the dirty-range sweep recomputed.
    pub recomputed_levels: u32,
}

/// The incrementally maintained best-k index. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaIndex {
    n: usize,
    m: usize,
    /// Per-vertex adjacency in ascending `(coreness, id)` order — the
    /// Alg. 1 scatter layout, kept sorted across mutations.
    adj: Vec<Vec<VertexId>>,
    coreness: Vec<u32>,
    kmax: u32,
    /// All vertices in ascending `(coreness, id)` order.
    order: Vec<VertexId>,
    /// `order` positions of shell `k`: `shell_start[k]..shell_start[k+1]`,
    /// length `kmax + 2`.
    shell_start: Vec<usize>,
    /// Alg. 1 position tags, relative to each vertex's list start, with
    /// the vertex degree as the "no qualifying neighbor" sentinel.
    same: Vec<u32>,
    plus: Vec<u32>,
    high: Vec<u32>,
    /// Alg. 2 primary values per `k`, length `kmax + 1`.
    primaries: Vec<PrimaryValues>,
}

impl DeltaIndex {
    /// Builds the index from scratch through the paper's pipeline (this is
    /// also the equivalence oracle: applying ops must reproduce `build` of
    /// the mutated graph exactly).
    pub fn build<G: GraphView>(g: &G) -> DeltaIndex {
        let decomp = core_decomposition(g);
        Self::assemble_from(g, decomp)
    }

    /// [`build`](Self::build) under an execution policy: the peel runs on
    /// the [`PeelStrategy`](bestk_core::PeelStrategy) the policy selects
    /// (bit-identical output either way), which is what the engine's
    /// commit-after-eviction rebuild routes through.
    pub fn build_with<G: GraphView + Sync>(g: &G, policy: &ExecPolicy) -> DeltaIndex {
        let decomp = core_decomposition_with(g, policy);
        Self::assemble_from(g, decomp)
    }

    fn assemble_from<G: GraphView>(g: &G, decomp: bestk_core::CoreDecomposition) -> DeltaIndex {
        let ordered = OrderedGraph::build(g, &decomp);
        let primaries = core_set_primaries(&ordered);
        let n = g.num_vertices();
        let offsets = g.degree_offsets();
        let raw = ordered.raw_adjacency();
        let adj: Vec<Vec<VertexId>> = (0..n)
            .map(|v| raw[offsets[v]..offsets[v + 1]].to_vec())
            .collect();
        let (same, plus, high) = ordered.raw_tags();
        DeltaIndex {
            n,
            m: g.num_edges(),
            adj,
            coreness: decomp.coreness_slice().to_vec(),
            kmax: decomp.kmax(),
            order: decomp.vertices_by_coreness().to_vec(),
            shell_start: decomp.shell_starts().to_vec(),
            same: same.to_vec(),
            plus: plus.to_vec(),
            high: high.to_vec(),
            primaries,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Largest coreness.
    pub fn kmax(&self) -> u32 {
        self.kmax
    }

    /// Approximate heap bytes held by the index: the per-vertex adjacency
    /// lists plus every order/tag/primary vector. Counts *capacity* (what
    /// the allocator actually holds), so memory-budget accounting sees
    /// the true cost of keeping the index resident.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        let adj_inner: usize = self
            .adj
            .iter()
            .map(|l| l.capacity() * size_of::<VertexId>())
            .sum();
        adj_inner
            + self.adj.capacity() * size_of::<Vec<VertexId>>()
            + self.coreness.capacity() * size_of::<u32>()
            + self.order.capacity() * size_of::<VertexId>()
            + self.shell_start.capacity() * size_of::<usize>()
            + (self.same.capacity() + self.plus.capacity() + self.high.capacity())
                * size_of::<u32>()
            + self.primaries.capacity() * size_of::<PrimaryValues>()
    }

    /// Coreness of `v`.
    pub fn coreness(&self, v: VertexId) -> u32 {
        self.coreness[v as usize]
    }

    /// The vertices of shell `k` (coreness exactly `k`), sorted by id.
    pub fn shell(&self, k: u32) -> &[VertexId] {
        let k = k as usize;
        if k + 1 >= self.shell_start.len() {
            return &[];
        }
        &self.order[self.shell_start[k]..self.shell_start[k + 1]]
    }

    /// Applies one op, returning what it touched.
    pub fn apply(&mut self, op: &EdgeOp) -> Result<ApplyStats, DeltaError> {
        let (u, v) = op.endpoints();
        if op.is_insert() {
            self.apply_insert(u, v)
        } else {
            self.apply_delete(u, v)
        }
    }

    /// Inserts the edge `{u, v}` and repairs every index layer.
    pub fn apply_insert(&mut self, u: VertexId, v: VertexId) -> Result<ApplyStats, DeltaError> {
        let _span = bestk_obs::span!("phase.delta.apply");
        self.validate(u, v)?;
        if self.adj[u as usize].contains(&v) {
            return Err(DeltaError::BadOp(format!(
                "edge ({u}, {v}) already present"
            )));
        }
        let (old_cu, old_cv) = (self.coreness[u as usize], self.coreness[v as usize]);
        let r = old_cu.min(old_cv);
        self.adj_insert(u, v);
        self.adj_insert(v, u);
        self.m += 1;
        let sub = self.collect_subcore(u, v, r);
        let changed = self.settle(&sub, r, true);
        for &w in &changed {
            self.coreness[w as usize] = r + 1;
        }
        self.move_between_adjacent_shells(&changed, r, r + 1);
        self.repair_tags_around(u, v, &changed);
        let hi = old_cu
            .max(old_cv)
            .max(self.coreness[u as usize])
            .max(self.coreness[v as usize]);
        let levels = self.sweep_dirty(hi);
        bestk_obs::counter("delta.inserts").inc();
        bestk_obs::counter("delta.recomputed_levels").add(u64::from(levels));
        Ok(ApplyStats {
            changed_vertices: changed.len(),
            recomputed_levels: levels,
        })
    }

    /// Deletes the edge `{u, v}` and repairs every index layer.
    pub fn apply_delete(&mut self, u: VertexId, v: VertexId) -> Result<ApplyStats, DeltaError> {
        let _span = bestk_obs::span!("phase.delta.apply");
        self.validate(u, v)?;
        if !self.adj[u as usize].contains(&v) {
            return Err(DeltaError::BadOp(format!("edge ({u}, {v}) not present")));
        }
        let (old_cu, old_cv) = (self.coreness[u as usize], self.coreness[v as usize]);
        // Both endpoints carry an edge, so both have coreness >= 1.
        let r = old_cu.min(old_cv);
        self.adj_remove(u, v);
        self.adj_remove(v, u);
        self.m -= 1;
        let sub = self.collect_subcore(u, v, r);
        let changed = self.settle(&sub, r, false);
        for &w in &changed {
            self.coreness[w as usize] = r - 1;
        }
        self.move_between_adjacent_shells(&changed, r, r - 1);
        self.repair_tags_around(u, v, &changed);
        let hi = old_cu.max(old_cv);
        let levels = self.sweep_dirty(hi);
        bestk_obs::counter("delta.deletes").inc();
        bestk_obs::counter("delta.recomputed_levels").add(u64::from(levels));
        Ok(ApplyStats {
            changed_vertices: changed.len(),
            recomputed_levels: levels,
        })
    }

    /// The maintained Alg. 2 profile (no triangle metrics: those fall back
    /// to the full pipeline — see DESIGN.md §15).
    pub fn profile(&self) -> CoreSetProfile {
        CoreSetProfile {
            kmax: self.kmax,
            primaries: self.primaries.clone(),
            has_triangles: false,
            context: GraphContext {
                total_vertices: self.n as u64,
                total_edges: self.m as u64,
            },
        }
    }

    /// The best `k` under `metric` from the maintained profile.
    pub fn best(&self, metric: Metric) -> Result<Option<BestKSet>, MetricError> {
        self.profile().try_best(&metric)
    }

    /// Materializes the maintained graph as a canonical [`CsrGraph`].
    pub fn to_csr(&self) -> CsrGraph {
        let mut b = GraphBuilder::with_capacity(self.m);
        b.reserve_vertices(self.n);
        for (w, list) in self.adj.iter().enumerate() {
            let w = cast::vertex_id(w);
            for &x in list {
                if w < x {
                    b.add_edge(w, x);
                }
            }
        }
        b.build()
    }

    fn validate(&self, u: VertexId, v: VertexId) -> Result<(), DeltaError> {
        if u == v {
            return Err(DeltaError::BadOp(format!("self-loop on vertex {u}")));
        }
        if (u as usize) >= self.n || (v as usize) >= self.n {
            return Err(DeltaError::BadOp(format!(
                "edge ({u}, {v}) out of range for {} vertices",
                self.n
            )));
        }
        Ok(())
    }

    /// Inserts `x` into `u`'s rank-ordered list at its `(coreness, id)`
    /// position.
    fn adj_insert(&mut self, u: VertexId, x: VertexId) {
        let DeltaIndex { adj, coreness, .. } = self;
        let key = (coreness[x as usize], x);
        let list = &mut adj[u as usize];
        let i = list.partition_point(|&y| (coreness[y as usize], y) < key);
        list.insert(i, x);
    }

    fn adj_remove(&mut self, u: VertexId, x: VertexId) {
        let list = &mut self.adj[u as usize];
        if let Some(i) = list.iter().position(|&y| y == x) {
            list.remove(i);
        }
    }

    /// The subcore around the mutated edge: every vertex of coreness
    /// exactly `r` reachable from an endpoint through coreness-`r`
    /// vertices. Only these candidates can change (by exactly 1).
    fn collect_subcore(&self, u: VertexId, v: VertexId, r: u32) -> Vec<VertexId> {
        let mut visited = vec![false; self.n];
        let mut stack: Vec<VertexId> = Vec::new();
        for w in [u, v] {
            if self.coreness[w as usize] == r && !visited[w as usize] {
                visited[w as usize] = true;
                stack.push(w);
            }
        }
        let mut out = Vec::new();
        while let Some(w) = stack.pop() {
            out.push(w);
            for &x in &self.adj[w as usize] {
                if self.coreness[x as usize] == r && !visited[x as usize] {
                    visited[x as usize] = true;
                    stack.push(x);
                }
            }
        }
        out
    }

    /// The local peel over the subcore: `cd(w)` counts neighbors of
    /// coreness `>= r` (every coreness-`r` neighbor of a subcore member is
    /// itself in the subcore, so the count is exact), then vertices below
    /// the threshold fall and cascade. Returns the changed set `C`, sorted
    /// by id: the survivors for an insert (they gain a level), the fallen
    /// for a delete (they lose one).
    fn settle(&self, sub: &[VertexId], r: u32, insert: bool) -> Vec<VertexId> {
        let mut pos = vec![usize::MAX; self.n];
        for (i, &w) in sub.iter().enumerate() {
            pos[w as usize] = i;
        }
        let mut cd: Vec<u32> = sub
            .iter()
            .map(|&w| {
                cast::u32_of(
                    self.adj[w as usize]
                        .iter()
                        .filter(|&&x| self.coreness[x as usize] >= r)
                        .count(),
                )
            })
            .collect();
        // Insert: survivors need cd > r to reach coreness r + 1.
        // Delete: survivors need cd >= r to keep coreness r.
        let falls = |cd: u32| if insert { cd <= r } else { cd < r };
        let mut fallen = vec![false; sub.len()];
        let mut queue: Vec<usize> = Vec::new();
        for (i, &c) in cd.iter().enumerate() {
            if falls(c) {
                fallen[i] = true;
                queue.push(i);
            }
        }
        let mut qi = 0;
        while qi < queue.len() {
            let w = sub[queue[qi]];
            qi += 1;
            for &x in &self.adj[w as usize] {
                let j = pos[x as usize];
                if j != usize::MAX && !fallen[j] {
                    cd[j] -= 1;
                    if falls(cd[j]) {
                        fallen[j] = true;
                        queue.push(j);
                    }
                }
            }
        }
        let mut changed: Vec<VertexId> = sub
            .iter()
            .zip(&fallen)
            .filter(|&(_, &fell)| fell != insert)
            .map(|(&w, _)| w)
            .collect();
        changed.sort_unstable();
        changed
    }

    /// Moves the changed set `C` (sorted by id, all previously in shell
    /// `from`) into the adjacent shell `to`, rewriting only the
    /// `order` span covering the two shells and growing/shrinking `kmax`
    /// when the top shell appears or empties.
    fn move_between_adjacent_shells(&mut self, c: &[VertexId], from: u32, to: u32) {
        if c.is_empty() {
            return;
        }
        if to > self.kmax {
            self.kmax = to;
            self.shell_start.push(self.n);
            self.primaries.push(PrimaryValues::default());
        }
        let lo_shell = from.min(to) as usize;
        let hi_shell = from.max(to) as usize;
        let lo = self.shell_start[lo_shell];
        let hi = self.shell_start[hi_shell + 1];
        let split = self.shell_start[hi_shell];
        let (lower_new, upper_new) = if to as usize == hi_shell {
            (
                without(&self.order[lo..split], c),
                merged(&self.order[split..hi], c),
            )
        } else {
            (
                merged(&self.order[lo..split], c),
                without(&self.order[split..hi], c),
            )
        };
        let new_split = lo + lower_new.len();
        self.order[lo..new_split].copy_from_slice(&lower_new);
        self.order[new_split..hi].copy_from_slice(&upper_new);
        self.shell_start[hi_shell] = new_split;
        if to < from
            && from == self.kmax
            && self.shell_start[self.kmax as usize] == self.shell_start[self.kmax as usize + 1]
        {
            self.kmax -= 1;
            self.shell_start.pop();
            self.primaries.pop();
        }
    }

    /// Re-sorts the adjacency lists and recounts the `(s, p, h)` tags of
    /// every vertex whose list content or neighbor keys changed:
    /// `{u, v} ∪ C ∪ N(C)`. The relative `(coreness, id)` order of all
    /// other vertices is untouched, so their lists and tags stay valid.
    fn repair_tags_around(&mut self, u: VertexId, v: VertexId, c: &[VertexId]) {
        let mut affected: Vec<VertexId> = vec![u, v];
        for &w in c {
            affected.push(w);
            affected.extend_from_slice(&self.adj[w as usize]);
        }
        affected.sort_unstable();
        affected.dedup();
        let DeltaIndex {
            adj,
            coreness,
            same,
            plus,
            high,
            ..
        } = self;
        for &w in &affected {
            let list = &mut adj[w as usize];
            list.sort_unstable_by_key(|&x| (coreness[x as usize], x));
            let cw = coreness[w as usize];
            let deg = cast::u32_of(list.len());
            let (mut s, mut p, mut h) = (deg, deg, deg);
            for (i, &x) in list.iter().enumerate() {
                let cx = coreness[x as usize];
                if s == deg && cx >= cw {
                    s = cast::u32_of(i);
                }
                if p == deg && cx > cw {
                    p = cast::u32_of(i);
                }
                if h == deg && (cx > cw || (cx == cw && x > w)) {
                    h = cast::u32_of(i);
                }
            }
            same[w as usize] = s;
            plus[w as usize] = p;
            high[w as usize] = h;
        }
    }

    /// Re-runs the Alg. 2 top-down sweep over the dirty levels
    /// `min(hi, kmax)..0` only, seeding the running aggregates from the
    /// first clean level above. Returns the number of levels recomputed.
    fn sweep_dirty(&mut self, hi: u32) -> u32 {
        let _span = bestk_obs::span!("phase.delta.sweep");
        let start = hi.min(self.kmax);
        let (mut num, mut in_twice, mut out): (u64, u64, i64) =
            if (start as usize) < self.kmax as usize {
                let seed = &self.primaries[start as usize + 1];
                (
                    seed.num_vertices,
                    2 * seed.internal_edges,
                    seed.boundary_edges as i64,
                )
            } else {
                (0, 0, 0)
            };
        for k in (0..=start).rev() {
            let lo = self.shell_start[k as usize];
            let hi2 = self.shell_start[k as usize + 1];
            for &w in &self.order[lo..hi2] {
                let deg = self.adj[w as usize].len() as u64;
                let s = u64::from(self.same[w as usize]);
                let p = u64::from(self.plus[w as usize]);
                let (gt, eq, lt) = (deg - p, p - s, s);
                in_twice += 2 * gt + eq;
                out += lt as i64 - gt as i64;
                num += 1;
            }
            self.primaries[k as usize] = PrimaryValues {
                num_vertices: num,
                internal_edges: in_twice / 2,
                boundary_edges: out as u64,
                triangles: 0,
                triplets: 0,
            };
        }
        start + 1
    }
}

/// `base` minus the members of `drop` (both id-sorted).
fn without(base: &[VertexId], drop: &[VertexId]) -> Vec<VertexId> {
    base.iter()
        .copied()
        .filter(|x| drop.binary_search(x).is_err())
        .collect()
}

/// Two id-sorted disjoint slices merged into one id-sorted vec.
fn merged(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bestk_graph::generators;

    /// Applies each op, asserting full structural equality against a
    /// from-scratch rebuild of the mutated graph after every step.
    fn drive(g: &CsrGraph, ops: &[EdgeOp]) {
        let mut index = DeltaIndex::build(g);
        let mut edges: std::collections::BTreeSet<(VertexId, VertexId)> = g.edges().collect();
        for (step, op) in ops.iter().enumerate() {
            index
                .apply(op)
                .unwrap_or_else(|e| panic!("step {step} {op:?}: {e}"));
            let (u, v) = op.endpoints();
            if op.is_insert() {
                edges.insert((u, v));
            } else {
                edges.remove(&(u, v));
            }
            let mut b = GraphBuilder::with_capacity(edges.len());
            b.reserve_vertices(g.num_vertices());
            for &(a, c) in &edges {
                b.add_edge(a, c);
            }
            let now = b.build();
            let oracle = DeltaIndex::build(&now);
            assert_eq!(index, oracle, "diverged at step {step} ({op:?})");
            assert_eq!(index.to_csr(), now, "graph diverged at step {step}");
        }
    }

    #[test]
    fn figure2_insert_delete_round_trip() {
        let g = generators::paper_figure2();
        drive(
            &g,
            &[
                EdgeOp::Insert(0, 11),
                EdgeOp::Insert(3, 9),
                EdgeOp::Delete(0, 11),
                EdgeOp::Delete(3, 9),
            ],
        );
    }

    #[test]
    fn first_edge_in_an_empty_graph_grows_kmax() {
        let g = CsrGraph::empty(4);
        let mut index = DeltaIndex::build(&g);
        assert_eq!(index.kmax(), 0);
        index.apply_insert(0, 1).unwrap();
        assert_eq!(index.kmax(), 1);
        assert_eq!((index.coreness(0), index.coreness(1)), (1, 1));
        assert_eq!(index.coreness(2), 0);
        index.apply_delete(0, 1).unwrap();
        assert_eq!(index, DeltaIndex::build(&g));
    }

    #[test]
    fn completing_a_triangle_promotes_the_whole_cycle() {
        let g = generators::regular::path(3);
        let mut index = DeltaIndex::build(&g);
        let stats = index.apply_insert(0, 2).unwrap();
        assert_eq!(stats.changed_vertices, 3);
        assert_eq!(index, DeltaIndex::build(&generators::regular::cycle(3)));
    }

    #[test]
    fn mixed_stream_tracks_the_oracle() {
        let g = generators::erdos_renyi_gnm(30, 70, 13);
        let ops = generators::edge_stream_mixed(&g, 120, 17);
        drive(&g, &ops);
    }

    #[test]
    fn delete_heavy_stream_tracks_the_oracle() {
        let g = generators::erdos_renyi_gnm(25, 60, 5);
        let ops = generators::edge_stream_delete_heavy(&g, 150, 23);
        drive(&g, &ops);
    }

    #[test]
    fn max_k_churn_tracks_the_oracle() {
        let g = generators::overlapping_cliques(24, 4, (4, 7), 31);
        let index = DeltaIndex::build(&g);
        let top: Vec<VertexId> = index.shell(index.kmax()).to_vec();
        let ops = generators::edge_stream_focused(&g, &top, 80, 37);
        assert!(!ops.is_empty());
        drive(&g, &ops);
    }

    #[test]
    fn adversarial_k_chain_churn_tracks_the_oracle() {
        // Maximum shell depth per vertex: every op near the top of the
        // chain dirties a deep sweep range.
        let g = generators::k_chain(6);
        let ops = generators::edge_stream_mixed(&g, 60, 41);
        drive(&g, &ops);
    }

    #[test]
    fn adversarial_shell_ladder_churn_tracks_the_oracle() {
        // Wide shells pinned to a deep core: boundary moves have many
        // same-coreness candidates at every level.
        let g = generators::shell_ladder(5, 4);
        let ops = generators::edge_stream_mixed(&g, 80, 43);
        drive(&g, &ops);
    }

    #[test]
    fn adversarial_tie_storm_churn_tracks_the_oracle() {
        // Shuffled identical cliques: one giant run of (coreness, id)
        // ties whose repair order must match the rebuild exactly.
        let g = generators::tie_storm(5, 4, 47);
        let ops = generators::edge_stream_mixed(&g, 80, 53);
        drive(&g, &ops);
    }

    #[test]
    fn invalid_ops_are_typed_errors() {
        let g = generators::paper_figure2();
        let mut index = DeltaIndex::build(&g);
        let pristine = index.clone();
        assert!(index.apply_insert(2, 2).is_err());
        assert!(index.apply_insert(0, 99).is_err());
        assert!(index.apply_delete(0, 11).is_err());
        let (u, v) = g.edges().next().unwrap();
        assert!(index.apply_insert(u, v).is_err());
        assert_eq!(index, pristine);
    }

    #[test]
    fn best_k_matches_the_full_pipeline() {
        let g = generators::erdos_renyi_gnm(40, 120, 7);
        let mut index = DeltaIndex::build(&g);
        for op in generators::edge_stream_mixed(&g, 50, 3) {
            index.apply(&op).unwrap();
        }
        let now = index.to_csr();
        let decomp = core_decomposition(&now);
        let ordered = OrderedGraph::build(&now, &decomp);
        let profile = bestk_core::core_set_profile(&ordered, false);
        for metric in [
            Metric::AverageDegree,
            Metric::InternalDensity,
            Metric::CutRatio,
        ] {
            assert_eq!(
                index.best(metric).unwrap(),
                profile.try_best(&metric).unwrap(),
                "{metric:?}"
            );
        }
    }
}
