//! Chunk plans: how an index range is split into contiguous work units.
//!
//! A [`ChunkPlan`] is a monotone sequence of boundaries over `0..len`.
//! [`ChunkPlan::even`] splits by item count; [`ChunkPlan::weighted`] splits
//! by a cumulative weight array so that each chunk carries roughly equal
//! total weight — the *edge-balanced* strategy used by the graph kernels,
//! whose per-vertex cost is proportional to degree (a CSR offsets array is
//! exactly the cumulative weight array they need).

use std::ops::Range;

/// A partition of `0..len` into contiguous, possibly empty chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkPlan {
    /// `bounds[c]..bounds[c + 1]` is chunk `c`; `bounds[0] = 0` and
    /// `bounds.last() = len`.
    bounds: Vec<usize>,
}

impl ChunkPlan {
    /// Splits `0..len` into `chunks` parts of near-equal item count (the
    /// first `len % chunks` parts get one extra item).
    pub fn even(len: usize, chunks: usize) -> ChunkPlan {
        let chunks = chunks.clamp(1, len.max(1));
        let base = len / chunks;
        let extra = len % chunks;
        let mut bounds = Vec::with_capacity(chunks + 1);
        let mut at = 0;
        bounds.push(0);
        for c in 0..chunks {
            at += base + usize::from(c < extra);
            bounds.push(at);
        }
        ChunkPlan { bounds }
    }

    /// Splits `0..prefix.len() - 1` items into `chunks` parts of
    /// near-equal total weight, where `prefix` is a cumulative weight array
    /// (`prefix[0] = 0`, `prefix[i]` = total weight of items `0..i`). A CSR
    /// offsets array makes this the degree-aware chunking of the graph
    /// kernels.
    ///
    /// Boundaries are chosen by binary search for the ideal weight split
    /// points, so the plan itself costs `O(chunks · log len)`.
    ///
    /// # Panics
    ///
    /// Panics if `prefix` is empty or not non-decreasing from 0.
    pub fn weighted(prefix: &[usize], chunks: usize) -> ChunkPlan {
        assert!(
            prefix.first() == Some(&0),
            "cumulative weight array must start at 0"
        );
        let len = prefix.len() - 1;
        let total = prefix[len];
        let chunks = chunks.clamp(1, len.max(1));
        if total == 0 {
            return ChunkPlan::even(len, chunks);
        }
        let mut bounds = Vec::with_capacity(chunks + 1);
        bounds.push(0);
        for c in 1..chunks {
            // Ideal boundary: first item index whose cumulative weight
            // reaches c/chunks of the total (never behind the previous
            // boundary, so chunks stay contiguous).
            let target = (total as u128 * c as u128 / chunks as u128) as usize;
            let at = prefix.partition_point(|&w| w < target).min(len);
            let prev = *bounds.last().unwrap_or(&0);
            bounds.push(at.max(prev));
        }
        bounds.push(len);
        ChunkPlan { bounds }
    }

    /// Total number of items covered.
    pub fn len(&self) -> usize {
        *self.bounds.last().unwrap_or(&0)
    }

    /// Whether the plan covers no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The item range of chunk `c`.
    pub fn range(&self, c: usize) -> Range<usize> {
        self.bounds[c]..self.bounds[c + 1]
    }

    /// The boundary positions (`num_chunks() + 1` entries, first 0, last
    /// [`len`](ChunkPlan::len)).
    pub fn bounds(&self) -> &[usize] {
        &self.bounds
    }
}

/// Cumulative weights of an item sequence: the `len + 1` array
/// [`ChunkPlan::weighted`] consumes (`out[0] = 0`, `out[i]` = sum of the
/// first `i` weights).
pub fn prefix_sum(weights: impl IntoIterator<Item = usize>) -> Vec<usize> {
    let iter = weights.into_iter();
    let mut out = Vec::with_capacity(iter.size_hint().0 + 1);
    let mut acc = 0usize;
    out.push(0);
    for w in iter {
        acc += w;
        out.push(acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranges(p: &ChunkPlan) -> Vec<Range<usize>> {
        (0..p.num_chunks()).map(|c| p.range(c)).collect()
    }

    #[test]
    fn even_covers_everything_once() {
        let p = ChunkPlan::even(10, 3);
        assert_eq!(ranges(&p), vec![0..4, 4..7, 7..10]);
        assert_eq!(p.len(), 10);
        let p = ChunkPlan::even(2, 8);
        assert_eq!(p.num_chunks(), 2, "chunks clamp to len");
        let p = ChunkPlan::even(0, 4);
        assert_eq!(p.num_chunks(), 1);
        assert!(p.is_empty());
    }

    #[test]
    fn weighted_balances_skewed_weights() {
        // One huge item up front, many tiny ones after: the even split
        // would put the huge item plus half the tail in chunk 0, while the
        // weighted split isolates it.
        let weights: Vec<usize> = std::iter::once(1000)
            .chain(std::iter::repeat_n(1, 9))
            .collect();
        let prefix = prefix_sum(weights);
        let p = ChunkPlan::weighted(&prefix, 2);
        assert_eq!(p.num_chunks(), 2);
        assert_eq!(p.range(0), 0..1, "heavy head isolated");
        assert_eq!(p.range(1), 1..10);
    }

    #[test]
    fn weighted_is_a_partition() {
        let prefix = prefix_sum((0..100).map(|i| i % 7));
        for chunks in [1, 2, 3, 5, 16, 200] {
            let p = ChunkPlan::weighted(&prefix, chunks);
            assert_eq!(p.bounds()[0], 0);
            assert_eq!(p.len(), 100);
            for w in p.bounds().windows(2) {
                assert!(w[0] <= w[1], "bounds must be monotone: {:?}", p.bounds());
            }
        }
    }

    #[test]
    fn weighted_zero_total_falls_back_to_even() {
        let prefix = vec![0; 11];
        let p = ChunkPlan::weighted(&prefix, 4);
        assert_eq!(p.len(), 10);
        assert_eq!(p.num_chunks(), 4);
    }

    #[test]
    fn prefix_sum_shape() {
        assert_eq!(prefix_sum([3, 0, 2]), vec![0, 3, 3, 5]);
        assert_eq!(prefix_sum([]), vec![0]);
    }
}
