//! # bestk-exec
//!
//! The workspace's shared execution-policy runtime. Every embarrassingly
//! parallel kernel in the workspace — triangle counting, h-index rounds,
//! CSR construction passes, truss support initialization, per-k metric
//! sweeps — routes its loop structure through an [`ExecPolicy`] instead of
//! hand-rolling `std::thread` plumbing. That buys three things:
//!
//! 1. **One scheduling strategy.** Work is split into contiguous chunks
//!    (evenly, or edge-balanced via [`ChunkPlan::weighted`] for skewed
//!    per-item costs) and claimed dynamically by a fixed pool of scoped
//!    workers, each with its own scratch allocation.
//! 2. **A determinism contract.** Chunk results are merged in chunk order
//!    regardless of which worker finished first, so a kernel whose per-chunk
//!    computation is deterministic produces bit-identical output at every
//!    thread count — enforced workspace-wide by the parallel-equals-
//!    sequential property tests.
//! 3. **A policed seam.** The `bestk-analyze` `no-raw-thread` lint forbids
//!    `std::thread::spawn` / `std::thread::scope` outside this crate, so
//!    future parallelism (sharding, async backends) grows here, not ad hoc.
//!
//! The crate is dependency-free and uses only scoped threads; no worker
//! outlives the call that spawned it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod chunk;
mod policy;
mod runtime;

pub use chunk::{prefix_sum, ChunkPlan};
pub use policy::{ExecError, ExecPolicy};
