//! The execution primitives: scoped chunked loops over an [`ExecPolicy`].
//!
//! All primitives share one engine: chunks from a [`ChunkPlan`] are claimed
//! dynamically (an atomic cursor) by `threads` scoped workers, each holding
//! a private scratch value built once per worker. Results land in a
//! chunk-indexed table and are handed back **in chunk order**, so any
//! kernel whose per-chunk computation is deterministic yields bit-identical
//! output at every thread count.
//!
//! Panic containment: a panic inside a chunk body is caught **on the
//! worker**, the remaining workers stop claiming chunks and join cleanly,
//! and the first captured payload is re-raised on the calling thread after
//! the scope joins. Callers therefore see worker panics exactly as if the
//! body had panicked inline — the seeded property runner and the engine's
//! request-level `catch_unwind` both rely on that — while no worker thread
//! ever dies mid-write or strands a sibling.

use std::ops::Range;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::chunk::ChunkPlan;
use crate::policy::ExecPolicy;

/// Recovers the protected value even if another worker panicked while
/// holding the lock: the panic is about to propagate through the scope
/// join anyway, so the poisoned data is never observed by callers.
fn lock_ignoring_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Records one runtime dispatch into the global metrics registry.
/// `exec.dispatches` and `exec.items` are invariant for a given workload;
/// `exec.chunks` and `exec.sequential_fallbacks` depend on the execution
/// mode (and some kernels skip the runtime entirely when sequential), so
/// every `exec.*` metric is documented as mode-dependent — see
/// DESIGN.md §12.
fn record_dispatch(items: usize, chunks: usize, workers: usize) {
    let registry = bestk_obs::registry();
    registry.counter("exec.dispatches").inc();
    registry.counter("exec.items").add(items as u64);
    registry.counter("exec.chunks").add(chunks as u64);
    if workers <= 1 {
        registry.counter("exec.sequential_fallbacks").inc();
    }
}

/// Collects the first panic payload raised by any worker; once armed, the
/// other workers stop claiming chunks (checked via the cheap flag) and the
/// payload is re-raised on the calling thread after the scope joins.
struct PanicSlot {
    hit: AtomicBool,
    payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl PanicSlot {
    fn new() -> PanicSlot {
        PanicSlot {
            hit: AtomicBool::new(false),
            payload: Mutex::new(None),
        }
    }

    fn armed(&self) -> bool {
        self.hit.load(Ordering::Relaxed)
    }

    fn arm(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = lock_ignoring_poison(&self.payload);
        if slot.is_none() {
            *slot = Some(payload);
        }
        self.hit.store(true, Ordering::Release);
    }

    /// Re-raises the captured panic, if any, on the current thread.
    fn resume(self) {
        if let Some(payload) = lock_ignoring_poison(&self.payload).take() {
            std::panic::resume_unwind(payload);
        }
    }
}

impl ExecPolicy {
    /// Splits `0..len` into this policy's preferred number of even chunks.
    pub fn plan_even(&self, len: usize) -> ChunkPlan {
        ChunkPlan::even(len, self.chunk_target(len))
    }

    /// Splits the items of a cumulative weight array (`prefix[0] = 0`,
    /// e.g. CSR offsets) into this policy's preferred number of
    /// weight-balanced chunks.
    pub fn plan_weighted(&self, prefix: &[usize]) -> ChunkPlan {
        ChunkPlan::weighted(prefix, self.chunk_target(prefix.len() - 1))
    }

    /// The scoped chunked `parallel_for`: runs `body` once per chunk of
    /// `plan`, with a per-worker scratch from `init`.
    ///
    /// `body` receives `(scratch, chunk index, item range)`. Chunks are
    /// claimed dynamically, so skewed chunk costs rebalance across workers;
    /// use a weighted plan when per-item costs vary (degree-shaped work).
    pub fn parallel_for<S, F>(&self, plan: &ChunkPlan, init: impl Fn() -> S + Sync, body: F)
    where
        S: Send,
        F: Fn(&mut S, usize, Range<usize>) + Sync,
    {
        self.map_chunks(plan, init, |scratch, c, range| body(scratch, c, range));
    }

    /// Maps every chunk of `plan` to a value, returning the values **in
    /// chunk order** (the deterministic-merge primitive the equality
    /// property tests rely on).
    pub fn map_chunks<S, R, F>(
        &self,
        plan: &ChunkPlan,
        init: impl Fn() -> S + Sync,
        map: F,
    ) -> Vec<R>
    where
        S: Send,
        R: Send,
        F: Fn(&mut S, usize, Range<usize>) -> R + Sync,
    {
        let chunks = plan.num_chunks();
        let workers = self.threads().min(chunks);
        record_dispatch(plan.len(), chunks, workers);
        if workers <= 1 {
            let mut scratch = init();
            return (0..chunks)
                .map(|c| map(&mut scratch, c, plan.range(c)))
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<R>>> = Mutex::new((0..chunks).map(|_| None).collect());
        let panic_slot = PanicSlot::new();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut scratch = init();
                    loop {
                        if panic_slot.armed() {
                            break;
                        }
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        if c >= chunks {
                            break;
                        }
                        match std::panic::catch_unwind(AssertUnwindSafe(|| {
                            map(&mut scratch, c, plan.range(c))
                        })) {
                            Ok(r) => lock_ignoring_poison(&results)[c] = Some(r),
                            Err(payload) => {
                                panic_slot.arm(payload);
                                break;
                            }
                        }
                    }
                });
            }
        });
        panic_slot.resume();
        let collected: Vec<R> = results
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .into_iter()
            .flatten()
            .collect();
        debug_assert_eq!(collected.len(), chunks, "every chunk must report a result");
        collected
    }

    /// Maps every chunk and folds the results **in chunk order** into an
    /// accumulator — deterministic even for non-commutative folds.
    pub fn map_reduce<S, R, A, F>(
        &self,
        plan: &ChunkPlan,
        init: impl Fn() -> S + Sync,
        map: F,
        acc: A,
        fold: impl FnMut(A, R) -> A,
    ) -> A
    where
        S: Send,
        R: Send,
        F: Fn(&mut S, usize, Range<usize>) -> R + Sync,
    {
        self.map_chunks(plan, init, map).into_iter().fold(acc, fold)
    }

    /// Runs `body` once per chunk with **exclusive mutable access** to that
    /// chunk's region of `data`: region `c` is `data[cuts[c]..cuts[c + 1]]`.
    /// This is how kernels write disjoint output slices (per-vertex tags,
    /// adjacency sub-ranges) in parallel without atomics.
    ///
    /// `cuts` must be monotone from `0` to `data.len()` with one region per
    /// chunk; `body` receives `(scratch, chunk index, item range, region)`.
    ///
    /// # Panics
    ///
    /// Panics if `cuts` does not describe a partition of `data` aligned
    /// with `plan`.
    pub fn for_each_disjoint<T, S, F>(
        &self,
        plan: &ChunkPlan,
        data: &mut [T],
        cuts: &[usize],
        init: impl Fn() -> S + Sync,
        body: F,
    ) where
        T: Send,
        S: Send,
        F: Fn(&mut S, usize, Range<usize>, &mut [T]) + Sync,
    {
        let chunks = plan.num_chunks();
        assert_eq!(cuts.len(), chunks + 1, "one data region per chunk");
        assert_eq!(cuts.first(), Some(&0), "regions must start at 0");
        assert_eq!(cuts.last(), Some(&data.len()), "regions must cover data");
        let workers = self.threads().min(chunks);
        record_dispatch(plan.len(), chunks, workers);
        if workers <= 1 {
            let mut scratch = init();
            let mut rest = data;
            for c in 0..chunks {
                let (region, tail) = rest.split_at_mut(cuts[c + 1] - cuts[c]);
                body(&mut scratch, c, plan.range(c), region);
                rest = tail;
            }
            return;
        }
        // Pre-split the data into per-chunk regions, then let workers claim
        // (chunk, region) pairs dynamically.
        let mut regions: Vec<Option<&mut [T]>> = Vec::with_capacity(chunks);
        let mut rest = data;
        for c in 0..chunks {
            let (region, tail) = rest.split_at_mut(cuts[c + 1] - cuts[c]);
            regions.push(Some(region));
            rest = tail;
        }
        let cursor = AtomicUsize::new(0);
        let slots = Mutex::new(regions);
        let panic_slot = PanicSlot::new();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut scratch = init();
                    loop {
                        if panic_slot.armed() {
                            break;
                        }
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        if c >= chunks {
                            break;
                        }
                        let region = lock_ignoring_poison(&slots)[c].take();
                        if let Some(region) = region {
                            let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                body(&mut scratch, c, plan.range(c), region)
                            }));
                            if let Err(payload) = caught {
                                panic_slot.arm(payload);
                                break;
                            }
                        }
                    }
                });
            }
        });
        panic_slot.resume();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::prefix_sum;

    #[test]
    fn map_chunks_preserves_chunk_order() {
        for threads in [1, 2, 4, 7] {
            let p = ExecPolicy::with_threads(threads).unwrap();
            let plan = ChunkPlan::even(100, 13);
            let out = p.map_chunks(&plan, || (), |_, c, range| (c, range.len()));
            let idx: Vec<usize> = out.iter().map(|&(c, _)| c).collect();
            assert_eq!(idx, (0..13).collect::<Vec<_>>(), "{threads} threads");
            let total: usize = out.iter().map(|&(_, l)| l).sum();
            assert_eq!(total, 100);
        }
    }

    #[test]
    fn map_reduce_folds_in_order() {
        // A non-commutative fold (string concatenation) must still be
        // deterministic across thread counts.
        let plan = ChunkPlan::even(26, 7);
        let reference = ExecPolicy::Sequential.map_reduce(
            &plan,
            || (),
            |_, c, r| format!("{c}:{}..{};", r.start, r.end),
            String::new(),
            |acc, s| acc + &s,
        );
        for threads in [2, 4, 7] {
            let p = ExecPolicy::with_threads(threads).unwrap();
            let got = p.map_reduce(
                &plan,
                || (),
                |_, c, r| format!("{c}:{}..{};", r.start, r.end),
                String::new(),
                |acc, s| acc + &s,
            );
            assert_eq!(got, reference, "{threads} threads");
        }
    }

    #[test]
    fn parallel_for_with_scratch_visits_every_index() {
        use std::sync::atomic::AtomicU64;
        let p = ExecPolicy::with_threads(4).unwrap();
        let plan = p.plan_even(1000);
        let sum = AtomicU64::new(0);
        p.parallel_for(
            &plan,
            || 0u64,
            |local, _, range| {
                *local = range.map(|i| i as u64).sum();
                sum.fetch_add(*local, Ordering::Relaxed);
            },
        );
        assert_eq!(sum.into_inner(), 999 * 1000 / 2);
    }

    #[test]
    fn for_each_disjoint_writes_disjoint_regions() {
        let weights: Vec<usize> = (0..50).map(|i| i % 5).collect();
        let prefix = prefix_sum(weights.iter().copied());
        let total = *prefix.last().unwrap();
        for threads in [1, 2, 4, 7] {
            let p = ExecPolicy::with_threads(threads).unwrap();
            let plan = ChunkPlan::weighted(&prefix, 9);
            let cuts: Vec<usize> = plan.bounds().iter().map(|&b| prefix[b]).collect();
            let mut data = vec![0usize; total];
            p.for_each_disjoint(
                &plan,
                &mut data,
                &cuts,
                || (),
                |_, c, items, region| {
                    assert_eq!(region.len(), prefix[items.end] - prefix[items.start]);
                    for x in region.iter_mut() {
                        *x = c + 1;
                    }
                },
            );
            assert!(data.iter().all(|&x| x > 0), "{threads} threads");
        }
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let p = ExecPolicy::with_threads(2).unwrap();
        let plan = ChunkPlan::even(8, 8);
        let hit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.parallel_for(
                &plan,
                || (),
                |_, c, _| {
                    if c == 5 {
                        panic!("boom");
                    }
                },
            );
        }));
        assert!(hit.is_err(), "panic inside a worker must reach the caller");
    }

    #[test]
    fn worker_panic_payload_is_preserved() {
        // The caught-and-reraised panic must carry the original payload so
        // request-level isolation can render a meaningful typed error.
        let p = ExecPolicy::with_threads(4).unwrap();
        let plan = ChunkPlan::even(32, 16);
        let hit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.map_chunks(
                &plan,
                || (),
                |_, c, _| {
                    if c == 7 {
                        panic!("chunk 7 exploded");
                    }
                    c
                },
            );
        }));
        let payload = hit.unwrap_err();
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert_eq!(msg, "chunk 7 exploded");
    }

    #[test]
    fn disjoint_worker_panic_reaches_caller_with_payload() {
        let p = ExecPolicy::with_threads(2).unwrap();
        let plan = ChunkPlan::even(8, 4);
        let cuts: Vec<usize> = plan.bounds().to_vec();
        let mut data = vec![0u8; 8];
        let hit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.for_each_disjoint(
                &plan,
                &mut data,
                &cuts,
                || (),
                |_, c, _, _| {
                    if c == 2 {
                        panic!("region 2 exploded");
                    }
                },
            );
        }));
        let payload = hit.unwrap_err();
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"region 2 exploded"));
    }

    #[test]
    fn empty_plan_is_a_no_op() {
        let p = ExecPolicy::with_threads(4).unwrap();
        let plan = p.plan_even(0);
        let out = p.map_chunks(&plan, || (), |_, _, range| range.len());
        assert_eq!(out, vec![0]);
    }
}
