//! The [`ExecPolicy`] type: how a kernel's loops should execute.

use std::fmt;
use std::num::NonZeroUsize;

/// How a kernel should execute its chunked loops.
///
/// `Sequential` runs every chunk in order on the calling thread —
/// no worker threads, no synchronization, the reference semantics.
/// `Parallel` runs chunks on `threads` scoped workers; results are still
/// merged in chunk order, so deterministic kernels produce bit-identical
/// output under either policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPolicy {
    /// Run on the calling thread, chunk by chunk, in order.
    Sequential,
    /// Run on a scoped pool of worker threads.
    Parallel {
        /// Number of worker threads (always ≥ 2; a single thread is
        /// normalized to [`ExecPolicy::Sequential`] at construction).
        threads: NonZeroUsize,
    },
}

/// Errors constructing an [`ExecPolicy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A thread count of zero was requested.
    ZeroThreads,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::ZeroThreads => {
                write!(f, "thread count must be a positive integer, got 0")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl Default for ExecPolicy {
    /// The default policy uses every available hardware thread.
    fn default() -> Self {
        ExecPolicy::auto()
    }
}

impl ExecPolicy {
    /// The sequential reference policy.
    pub fn sequential() -> ExecPolicy {
        ExecPolicy::Sequential
    }

    /// A policy using `std::thread::available_parallelism` worker threads
    /// (sequential when the machine reports a single hardware thread or the
    /// query fails).
    pub fn auto() -> ExecPolicy {
        match std::thread::available_parallelism() {
            Ok(n) if n.get() > 1 => ExecPolicy::Parallel { threads: n },
            _ => ExecPolicy::Sequential,
        }
    }

    /// A policy with an explicit thread count. Rejects 0; normalizes 1 to
    /// [`ExecPolicy::Sequential`] so a single-threaded run never pays for
    /// worker spawning or synchronization.
    pub fn with_threads(threads: usize) -> Result<ExecPolicy, ExecError> {
        match NonZeroUsize::new(threads) {
            None => Err(ExecError::ZeroThreads),
            Some(n) if n.get() == 1 => Ok(ExecPolicy::Sequential),
            Some(n) => Ok(ExecPolicy::Parallel { threads: n }),
        }
    }

    /// Number of threads this policy executes on (1 for sequential).
    pub fn threads(&self) -> usize {
        match self {
            ExecPolicy::Sequential => 1,
            ExecPolicy::Parallel { threads } => threads.get(),
        }
    }

    /// Whether the policy spawns worker threads.
    pub fn is_parallel(&self) -> bool {
        matches!(self, ExecPolicy::Parallel { .. })
    }

    /// The number of chunks a work list of `len` items should be split
    /// into: ~4 chunks per worker (so dynamic claiming can rebalance skew)
    /// but never more than `len`.
    pub(crate) fn chunk_target(&self, len: usize) -> usize {
        match self {
            ExecPolicy::Sequential => 1,
            ExecPolicy::Parallel { threads } => (threads.get() * 4).min(len).max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_threads_rejects_zero_and_normalizes_one() {
        assert_eq!(ExecPolicy::with_threads(0), Err(ExecError::ZeroThreads));
        assert_eq!(ExecPolicy::with_threads(1), Ok(ExecPolicy::Sequential));
        let p = ExecPolicy::with_threads(4).unwrap();
        assert!(p.is_parallel());
        assert_eq!(p.threads(), 4);
    }

    #[test]
    fn auto_reports_at_least_one_thread() {
        let p = ExecPolicy::auto();
        assert!(p.threads() >= 1);
        assert_eq!(ExecPolicy::sequential().threads(), 1);
    }

    #[test]
    fn chunk_target_oversubscribes_but_never_exceeds_len() {
        let p = ExecPolicy::with_threads(4).unwrap();
        assert_eq!(p.chunk_target(1_000), 16);
        assert_eq!(p.chunk_target(3), 3);
        assert_eq!(p.chunk_target(0), 1);
        assert_eq!(ExecPolicy::Sequential.chunk_target(1_000), 1);
    }

    #[test]
    fn zero_threads_error_displays() {
        let msg = ExecError::ZeroThreads.to_string();
        assert!(msg.contains("positive integer"), "{msg}");
    }
}
