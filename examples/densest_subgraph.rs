//! Densest subgraph via best-k core decomposition (paper §V-D).
//!
//! Compares four solvers on a power-law graph with a planted dense clique:
//! the paper's `Opt-D` (best single core by average degree), a
//! `CoreApp`-style kmax-core approximation, Charikar's greedy peeling, and —
//! on a small subsample — the exact flow-based optimum, to show the
//! approximation quality in practice.
//!
//! ```sh
//! cargo run --release --example densest_subgraph
//! ```

use bestk::apps::{charikar_peeling, core_app, goldberg_exact, opt_d};
use bestk::core::analyze_basic;
use bestk::graph::{generators, GraphBuilder};

fn main() {
    // Power-law background plus a planted K30 on the top ids — the densest
    // region a solver should find.
    let background = generators::chung_lu_power_law(20_000, 8.0, 2.4, 7);
    let n = background.num_vertices() as u32;
    let mut b = GraphBuilder::new();
    b.extend_edges(background.edges());
    for u in n..n + 30 {
        for v in (u + 1)..n + 30 {
            b.add_edge(u, v);
        }
    }
    // Stitch the clique into the background so it is not a separate island.
    for i in 0..30u32 {
        b.add_edge(n + i, i * 97 % n);
    }
    let g = b.build();
    println!(
        "graph: n={}, m={} (with a planted K30)\n",
        g.num_vertices(),
        g.num_edges()
    );

    let analysis = analyze_basic(&g);
    println!(
        "{:<18} {:>12} {:>8} {:>30}",
        "method", "avg degree", "|S|", "notes"
    );
    let d = opt_d(&g, &analysis);
    println!(
        "{:<18} {:>12.3} {:>8} {:>30}",
        "Opt-D",
        d.average_degree,
        d.vertices.len(),
        format!(
            "best core, k = {}",
            analysis.decomposition().coreness(d.vertices[0])
        )
    );
    let ca = core_app(&g, &analysis);
    println!(
        "{:<18} {:>12.3} {:>8} {:>30}",
        "CoreApp-style",
        ca.average_degree,
        ca.vertices.len(),
        "densest kmax-core"
    );
    let peel = charikar_peeling(&g);
    println!(
        "{:<18} {:>12.3} {:>8} {:>30}",
        "Charikar peeling",
        peel.average_degree,
        peel.vertices.len(),
        "greedy 1/2-approx"
    );

    // Exact optimum on a small graph for a quality reference: the planted
    // clique alone has average degree 29, so every solver above should be
    // at or near 29 on the full graph.
    let small = generators::erdos_renyi_gnm(300, 1800, 3);
    let exact = goldberg_exact(&small);
    let small_analysis = analyze_basic(&small);
    let approx = opt_d(&small, &small_analysis);
    println!(
        "\nexact-vs-Opt-D check on a 300-vertex G(n,m): exact={:.3}, Opt-D={:.3} (ratio {:.3})",
        exact.average_degree,
        approx.average_degree,
        approx.average_degree / exact.average_degree
    );
    assert!(approx.average_degree >= exact.average_degree / 2.0);
}
