//! Plugging a custom community metric into every algorithm (§VI-A).
//!
//! The paper's extensibility claim: any metric computable from the five
//! primary values works with the optimal sweeps unchanged. This example
//! defines two custom metrics — a size-penalized density ("find a dense
//! core that isn't tiny") and a triangle-participation score — and runs the
//! full best-k machinery on them without touching any library code.
//!
//! ```sh
//! cargo run --release --example custom_metric
//! ```

use bestk::core::{analyze, CommunityMetric, GraphContext, PrimaryValues};
use bestk::graph::generators;

/// Density times log-size: rewards dense subgraphs that are also large —
/// counters density's bias toward tiny cliques.
struct SizeAwareDensity;

impl CommunityMetric for SizeAwareDensity {
    fn name(&self) -> &str {
        "size-aware density"
    }
    fn score(&self, pv: &PrimaryValues, _: &GraphContext) -> f64 {
        if pv.num_vertices < 2 {
            return f64::NAN;
        }
        let n = pv.num_vertices as f64;
        let density = 2.0 * pv.internal_edges as f64 / (n * (n - 1.0));
        density * n.ln()
    }
}

/// Triangles per edge: how much of the subgraph is triangle-supported.
struct TrianglesPerEdge;

impl CommunityMetric for TrianglesPerEdge {
    fn name(&self) -> &str {
        "triangles per edge"
    }
    fn needs_triangles(&self) -> bool {
        true
    }
    fn score(&self, pv: &PrimaryValues, _: &GraphContext) -> f64 {
        if pv.internal_edges == 0 {
            f64::NAN
        } else {
            pv.triangles as f64 / pv.internal_edges as f64
        }
    }
}

fn main() {
    let g = generators::chung_lu_power_law(30_000, 9.0, 2.4, 123);
    println!("graph: n={}, m={}", g.num_vertices(), g.num_edges());
    let analysis = analyze(&g);
    println!("kmax = {}\n", analysis.kmax());

    for metric in [&SizeAwareDensity as &dyn CommunityMetric, &TrianglesPerEdge] {
        let set = analysis.best_core_set(metric).expect("finite score");
        let core = analysis.best_single_core(metric).expect("finite score");
        let members = analysis.best_single_core_vertices(metric).expect("members");
        println!(
            "{:<22}  best set k = {:<4} (score {:.4})   best single core k = {:<4} |S| = {} (score {:.4})",
            metric.name(),
            set.k,
            set.score,
            core.k,
            members.len(),
            core.score
        );
    }

    // The same custom metrics drive the per-k series (Figure 5 style).
    let series = analysis.core_set_scores(&SizeAwareDensity);
    let peak = series
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_finite())
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap();
    println!(
        "\nsize-aware density peaks at k = {} with {:.4} (vs plain density's k = kmax bias)",
        peak.0, peak.1
    );
}
