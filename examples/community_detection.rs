//! Community detection with best-k core decomposition.
//!
//! The paper's motivating scenario: a social network contains communities,
//! and the right `k` extracts them — but nobody knows the right `k` in
//! advance. This example plants ground-truth communities, lets each metric
//! pick its own best k, and measures how well the chosen k-core set / best
//! single core recovers the planted structure (precision / recall / F1
//! against the densest planted block).
//!
//! ```sh
//! cargo run --release --example community_detection
//! ```

use std::collections::HashSet;

use bestk::core::{analyze, CommunityMetric, Metric};
use bestk::graph::{generators, GraphBuilder, VertexId};

/// Three planted communities of decreasing density over a sparse background
/// population; block 0 is the strongest (the "real" community).
fn build(
    sizes: &[(usize, f64)],
    background: usize,
    seed: u64,
) -> (bestk::graph::CsrGraph, Vec<Vec<VertexId>>) {
    let total: usize = sizes.iter().map(|(s, _)| s).sum::<usize>() + background;
    let mut b = GraphBuilder::new();
    b.reserve_vertices(total);
    let mut communities = Vec::new();
    let mut offset = 0u32;
    for (i, &(size, p)) in sizes.iter().enumerate() {
        let block = generators::erdos_renyi_gnp(size, p, seed + i as u64);
        b.extend_edges(block.edges().map(|(u, v)| (u + offset, v + offset)));
        communities.push((offset..offset + size as u32).collect());
        offset += size as u32;
    }
    // Sparse background noise over everyone (also wires the blocks in).
    let noise = generators::erdos_renyi_gnp(total, 0.004, seed + 99);
    b.extend_edges(noise.edges());
    (b.build(), communities)
}

fn main() {
    let sizes = [(80usize, 0.5), (120, 0.2), (160, 0.1)];
    let (g, communities) = build(&sizes, 640, 2024);
    let g = &g;
    println!(
        "planted-community graph: n={}, m={}, blocks={:?}",
        g.num_vertices(),
        g.num_edges(),
        sizes
    );

    let analysis = analyze(g);
    println!("kmax = {}\n", analysis.kmax());

    let target: HashSet<VertexId> = communities[0].iter().copied().collect();

    println!(
        "{:<24} {:>6} {:>8} {:>10} {:>10} {:>8}",
        "metric", "k", "|S|", "precision", "recall", "F1"
    );
    for metric in Metric::ALL {
        let Some(best) = analysis.best_single_core(&metric) else {
            continue;
        };
        let members = analysis
            .best_single_core_vertices(&metric)
            .expect("members of a finite-score core");
        let (p, r, f1) = prf(&members, &target);
        println!(
            "{:<24} {:>6} {:>8} {:>10.3} {:>10.3} {:>8.3}",
            metric.name(),
            best.k,
            members.len(),
            p,
            r,
            f1
        );
    }

    // The modularity-guided best k-core set usually isolates the union of
    // the planted blocks from the background.
    let set = analysis
        .best_core_set(&Metric::Modularity)
        .expect("finite modularity");
    let set_members = analysis
        .best_core_set_vertices(&Metric::Modularity)
        .expect("set members");
    let planted: HashSet<VertexId> = communities.iter().flatten().copied().collect();
    let overlap = set_members.iter().filter(|v| planted.contains(v)).count();
    println!(
        "\nmodularity's best k-core set: k={}, |C_k|={}, covers {}/{} planted-community vertices",
        set.k,
        set_members.len(),
        overlap,
        planted.len()
    );
}

fn prf(found: &[VertexId], target: &HashSet<VertexId>) -> (f64, f64, f64) {
    if found.is_empty() || target.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let tp = found.iter().filter(|v| target.contains(v)).count() as f64;
    let precision = tp / found.len() as f64;
    let recall = tp / target.len() as f64;
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    (precision, recall, f1)
}
