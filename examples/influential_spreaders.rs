//! Influential spreaders: coreness versus degree (Kitsak et al. 2010, one
//! of the paper's motivating k-core applications).
//!
//! Builds a power-law social network, ranks candidate seeds by coreness and
//! by degree, and measures actual spreading power with SIR epidemics. The
//! classic result — reproduced here — is that high-coreness seeds spread at
//! least as far as high-degree ones, and that hubs dangling outside the
//! core underperform their degree.
//!
//! ```sh
//! cargo run --release --example influential_spreaders
//! ```

use bestk::apps::spreaders::{average_spread, rank_by_coreness, rank_by_degree};
use bestk::core::core_decomposition;
use bestk::graph::rng::Xoshiro256;
use bestk::graph::{generators, GraphBuilder};

fn main() {
    // Power-law network plus a planted "celebrity" hub: very high degree,
    // but all its neighbors are periphery (coreness 1 leaves).
    let base = generators::chung_lu_power_law(5_000, 8.0, 2.4, 21);
    let n = base.num_vertices() as u32;
    let mut b = GraphBuilder::new();
    b.extend_edges(base.edges());
    let hub = n;
    for leaf in 0..400u32 {
        b.add_edge(hub, n + 1 + leaf);
    }
    b.add_edge(hub, 0);
    let g = b.build();
    let d = core_decomposition(&g);
    println!(
        "network: n={}, m={}, kmax={}",
        g.num_vertices(),
        g.num_edges(),
        d.kmax()
    );
    println!(
        "planted hub: vertex {hub}, degree {}, coreness {}",
        g.degree(hub),
        d.coreness(hub)
    );

    let beta = 0.08;
    let trials = 200;
    let mut rng = Xoshiro256::seed_from_u64(7);

    let by_core = rank_by_coreness(&g, &d);
    let by_deg = rank_by_degree(&g);
    assert_eq!(by_deg[0], hub, "the celebrity hub tops the degree ranking");

    println!("\ntop-5 seeds by each heuristic (SIR beta = {beta}, {trials} trials):");
    println!(
        "{:<10} {:>8} {:>8} {:>10} | {:<10} {:>8} {:>8} {:>10}",
        "core-seed", "deg", "c(v)", "spread", "deg-seed", "deg", "c(v)", "spread"
    );
    for i in 0..5 {
        let (a, b_) = (by_core[i], by_deg[i]);
        let sa = average_spread(&g, a, beta, trials, &mut rng);
        let sb = average_spread(&g, b_, beta, trials, &mut rng);
        println!(
            "{:<10} {:>8} {:>8} {:>10.1} | {:<10} {:>8} {:>8} {:>10.1}",
            a,
            g.degree(a),
            d.coreness(a),
            sa,
            b_,
            g.degree(b_),
            d.coreness(b_),
            sb
        );
    }

    // The paper-cited claim, checked quantitatively.
    let hub_spread = average_spread(&g, hub, beta, trials, &mut rng);
    let core_seed = by_core[0];
    let core_spread = average_spread(&g, core_seed, beta, trials, &mut rng);
    println!("\nceleb hub spread: {hub_spread:.1} vs top-coreness seed spread: {core_spread:.1}");
    println!(
        "coreness seed ({}x the hub's reach) confirms the k-shell heuristic",
        (core_spread / hub_spread).max(0.0)
    );
}
