//! Quickstart: find the best k for a small graph under every metric.
//!
//! Builds the paper's Figure 2 example graph, runs the full analysis once,
//! and prints the best k-core set and best single k-core for each of the six
//! community scoring metrics.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use bestk::core::{analyze, CommunityMetric, Metric};
use bestk::graph::generators;

fn main() {
    // The 12-vertex worked example from the paper (Figure 2): two 4-cliques
    // joined through a sparse 2-shell.
    let g = generators::paper_figure2();
    println!(
        "graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // One pass computes every primary value; metric scoring is then O(kmax).
    let analysis = analyze(&g);
    println!("kmax = {}\n", analysis.kmax());

    println!(
        "{:<24} {:>12} {:>14} {:>12} {:>14}",
        "metric", "best-set k", "set score", "best-core k", "core score"
    );
    for metric in Metric::ALL {
        let set = analysis.best_core_set(&metric).expect("finite score");
        let core = analysis.best_single_core(&metric).expect("finite score");
        println!(
            "{:<24} {:>12} {:>14.4} {:>12} {:>14.4}",
            metric.name(),
            set.k,
            set.score,
            core.k,
            core.score
        );
    }

    // The score of *every* k-core set is also available (Figure 5's series).
    let series = analysis.core_set_scores(&Metric::AverageDegree);
    println!("\naverage degree of C_k for k = 0..={}:", analysis.kmax());
    for (k, s) in series.iter().enumerate() {
        println!("  k = {k}: {s:.4}");
    }

    // And the membership of the winning core can be materialized.
    let members = analysis
        .best_single_core_vertices(&Metric::InternalDensity)
        .expect("finite score");
    println!("\ndensest single core members: {members:?}");
}
