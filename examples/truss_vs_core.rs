//! Best-k across two decompositions: k-core versus k-truss (§VI-B).
//!
//! The paper notes that the best-k framework transfers to any nested
//! decomposition; this example runs both on the same graph and contrasts
//! the subgraphs each one's best k selects. Trusses demand triangle
//! support, so their best sets are smaller and denser than the best core
//! sets at the same metric.
//!
//! ```sh
//! cargo run --release --example truss_vs_core
//! ```

use bestk::core::{analyze, CommunityMetric, Metric};
use bestk::graph::generators;
use bestk::truss::baseline::truss_set_vertices;
use bestk::truss::{truss_set_profile, EdgeIndex};

fn main() {
    // A collaboration-style graph: overlapping cliques over 3000 vertices.
    let g = generators::overlapping_cliques(3_000, 500, (4, 14), 77);
    println!("graph: n={}, m={}", g.num_vertices(), g.num_edges());

    // --- k-core side.
    let core_analysis = analyze(&g);
    println!("kmax (core) = {}", core_analysis.kmax());

    // --- k-truss side.
    let idx = EdgeIndex::build(&g);
    let t = bestk::truss::decomposition::truss_decomposition_with_index(&g, &idx);
    let truss_profile = truss_set_profile(&g, &idx, &t);
    println!("tmax (truss) = {}", t.tmax());

    println!(
        "\n{:<24} {:>9} {:>11} {:>10} {:>11} {:>10} {:>10}",
        "metric", "core k*", "core score", "core |S|", "truss k*", "truss score", "truss |S|"
    );
    for metric in Metric::ALL {
        let core_best = core_analysis.best_core_set(&metric);
        let truss_best = truss_profile.best(&metric);
        let core_size = core_best
            .map(|b| core_analysis.decomposition().core_set_size(b.k))
            .unwrap_or(0);
        let truss_size = truss_best
            .map(|b| truss_set_vertices(&g, &idx, &t, b.k).len())
            .unwrap_or(0);
        println!(
            "{:<24} {:>9} {:>11.4} {:>10} {:>11} {:>10.4} {:>10}",
            metric.name(),
            core_best
                .map(|b| b.k.to_string())
                .unwrap_or_else(|| "-".into()),
            core_best.map(|b| b.score).unwrap_or(f64::NAN),
            core_size,
            truss_best
                .map(|b| b.k.to_string())
                .unwrap_or_else(|| "-".into()),
            truss_best.map(|b| b.score).unwrap_or(f64::NAN),
            truss_size,
        );
    }

    // Best single truss (§VI-B's harder problem, solved by enumeration).
    if let Some(best) = bestk::truss::best_single_k_truss(&g, &idx, &t, &Metric::InternalDensity) {
        println!(
            "\nbest single k-truss by density: k = {}, score = {:.4}, |S| = {}",
            best.truss.k,
            best.score,
            best.truss.vertices.len()
        );
    }
    // And the truss forest mirrors the paper's §IV-A core forest.
    let tf = bestk::truss::TrussForest::build(&g, &idx, &t);
    println!(
        "truss forest: {} nodes, {} roots",
        tf.node_count(),
        tf.roots().len()
    );

    // The structural relationship the paper leans on: the k-truss is always
    // inside the (k-1)-core, so truss selections are at least as cohesive.
    let k = t.tmax();
    let truss_members = truss_set_vertices(&g, &idx, &t, k);
    let d = core_analysis.decomposition();
    let inside = truss_members
        .iter()
        .all(|&v| d.coreness(v) >= k.saturating_sub(1));
    println!(
        "\ntmax-truss ({} vertices) inside the (tmax-1)-core set: {}",
        truss_members.len(),
        inside
    );
    assert!(inside, "k-truss must be contained in the (k-1)-core");
}
