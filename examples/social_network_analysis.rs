//! End-to-end social-network analysis walkthrough.
//!
//! A miniature of the paper's full evaluation on one R-MAT "social network":
//! dataset statistics (Table III), the best k per metric (Table IV), the
//! score-versus-k curve (Figure 5), the core-forest shape, a Table VIII-
//! style densest-subgraph comparison, and a size-constrained membership
//! query (Table IX).
//!
//! ```sh
//! cargo run --release --example social_network_analysis
//! ```

use bestk::apps::{core_app, opt_d, opt_sc};
use bestk::core::{analyze, CommunityMetric, Metric};
use bestk::graph::{generators, stats};

fn main() {
    let g = generators::rmat(15, 12, 0.57, 0.19, 0.19, 42);

    // --- Table III-style statistics.
    let s = stats::graph_stats(&g);
    println!("== dataset ==");
    println!(
        "n = {}, m = {}, d_avg = {:.1}, d_max = {}",
        s.num_vertices, s.num_edges, s.average_degree, s.max_degree
    );

    let analysis = analyze(&g);
    println!("kmax = {}", analysis.kmax());
    println!(
        "distinct k-cores (forest nodes) = {}",
        analysis.forest().node_count()
    );

    // --- Table IV-style best k per metric.
    println!("\n== best k per metric ==");
    for metric in Metric::ALL {
        let set = analysis.best_core_set(&metric);
        let core = analysis.best_single_core(&metric);
        println!(
            "{:<24} CS-k = {:<6} C-k = {}",
            metric.name(),
            set.map(|b| b.k.to_string()).unwrap_or_else(|| "-".into()),
            core.map(|b| b.k.to_string()).unwrap_or_else(|| "-".into()),
        );
    }

    // --- Figure 5-style curve (coarse): average degree of C_k.
    println!("\n== average degree of the k-core set vs k ==");
    let series = analysis.core_set_scores(&Metric::AverageDegree);
    let step = (series.len() / 12).max(1);
    for k in (0..series.len()).step_by(step) {
        let bar_len = (series[k] / series.iter().cloned().fold(0.0, f64::max) * 50.0) as usize;
        println!("k = {k:>4}: {:>8.2} |{}", series[k], "#".repeat(bar_len));
    }

    // --- Core forest shape.
    let roots = analysis.forest().roots();
    println!("\n== core forest ==");
    println!("{} trees (connected components)", roots.len());
    let deepest = analysis
        .forest()
        .nodes()
        .iter()
        .map(|n| n.coreness)
        .max()
        .unwrap_or(0);
    println!("deepest core level = {deepest}");

    // --- Densest subgraph (Table VIII style).
    println!("\n== densest subgraph ==");
    let d = opt_d(&g, &analysis);
    let ca = core_app(&g, &analysis);
    println!(
        "Opt-D:    avg degree {:.2} over {} vertices ({:.3}% of V)",
        d.average_degree,
        d.vertices.len(),
        100.0 * d.vertices.len() as f64 / s.num_vertices as f64
    );
    println!(
        "CoreApp:  avg degree {:.2} over {} vertices",
        ca.average_degree,
        ca.vertices.len()
    );

    // --- Size-constrained k-core query (Table IX style).
    println!("\n== size-constrained k-core query ==");
    let decomp = analysis.decomposition();
    let k = (analysis.kmax() / 3).max(2);
    let q = g
        .vertices()
        .find(|&v| decomp.coreness(v) >= k + 2)
        .expect("a vertex with enough coreness");
    match opt_sc(&g, &analysis, k, 40, q) {
        Some(res) => println!(
            "query (k={k}, h=40, q={q}): got {} vertices from a {}-core (hit@5% = {})",
            res.vertices.len(),
            res.source_core_k,
            res.hits(40, 0.05)
        ),
        None => println!("query (k={k}, h=40, q={q}): infeasible"),
    }
}
