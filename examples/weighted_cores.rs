//! Best s on a weighted graph (§VII extension).
//!
//! Models a collaboration network where edge weights count joint papers: a
//! small team with *heavy* ties versus a larger team with many weak ties.
//! Unweighted best-k sees only topology and picks the larger team; the
//! weighted s-core sweep picks the heavy one — the scenario §VII's weighted
//! references ([1], [29]) motivate.
//!
//! ```sh
//! cargo run --release --example weighted_cores
//! ```

use bestk::core::weighted::{weighted_core_decomposition, weighted_core_set_profile};
use bestk::core::{analyze_basic, Metric};
use bestk::graph::weighted::WeightedGraphBuilder;
use bestk::graph::{generators, GraphBuilder};

fn main() {
    // Background: sparse random collaboration graph.
    let background = generators::erdos_renyi_gnm(400, 900, 11);
    let n = background.num_vertices() as u32;

    // Team A: 6 researchers, 10 joint papers per pair (heavy K6).
    // Team B: 12 researchers, 1 joint paper per pair (light K12).
    let mut wb = WeightedGraphBuilder::new();
    for (u, v) in background.edges() {
        wb.add_edge(u, v, 1);
    }
    for u in n..n + 6 {
        for v in (u + 1)..n + 6 {
            wb.add_edge(u, v, 10);
        }
    }
    for u in n + 6..n + 18 {
        for v in (u + 1)..n + 18 {
            wb.add_edge(u, v, 1);
        }
    }
    // Wire both teams into the background.
    wb.add_edge(n, 0, 1);
    wb.add_edge(n + 6, 1, 1);
    let wg = wb.build();
    println!(
        "weighted graph: n={}, m={}, total weight={}",
        wg.num_vertices(),
        wg.num_edges(),
        wg.total_weight()
    );

    // --- Unweighted view: topology only.
    let mut ub = GraphBuilder::new();
    for v in wg.graph().vertices() {
        for &u in wg.graph().neighbors(v) {
            ub.add_edge(v, u);
        }
    }
    let unweighted = ub.build();
    let ua = analyze_basic(&unweighted);
    let ub_best = ua.best_core_set(&Metric::AverageDegree).unwrap();
    let core_members = ua.decomposition().core_set_vertices(ub_best.k);
    println!(
        "\nunweighted best k-core set: k = {}, avg degree = {:.2}, |S| = {}",
        ub_best.k,
        ub_best.score,
        core_members.len()
    );
    let picks_light_team = core_members.iter().all(|&v| v >= n + 6);
    println!("  -> selects the larger light-tie team: {picks_light_team}");

    // --- Weighted view: the heavy team dominates.
    let wd = weighted_core_decomposition(&wg);
    let profile = weighted_core_set_profile(&wg, &wd);
    let (best_s, score) = profile.best(&Metric::AverageDegree).unwrap();
    println!("\nweighted best s-core set: s = {best_s}, weighted avg degree = {score:.2}");
    let idx = profile.levels.iter().position(|&l| l == best_s).unwrap();
    let members = wd.core_set_at(idx);
    println!("  members: {members:?}");
    let picks_heavy_team = members.iter().all(|&v| (n..n + 6).contains(&v));
    println!("  -> selects the heavy-tie team: {picks_heavy_team}");
    assert!(
        picks_heavy_team,
        "weighted sweep should isolate the heavy K6"
    );

    // Weighted conductance of every s-core set, for flavor.
    println!("\ns-core set profile (weighted conductance):");
    let con = profile.scores(&Metric::Conductance);
    for (i, &level) in profile.levels.iter().enumerate().rev().take(8) {
        println!(
            "  s = {:>3}: n = {:>3}, w_in = {:>4}, con = {:.4}",
            level, profile.primaries[i].num_vertices, profile.primaries[i].internal_edges, con[i]
        );
    }
}
