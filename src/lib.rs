//! # bestk
//!
//! Umbrella crate for the `bestk` workspace — a from-scratch Rust
//! reproduction of *"Finding the Best k in Core Decomposition: A Time and
//! Space Optimal Solution"* (Chu et al., ICDE 2020).
//!
//! This crate re-exports the three library crates so applications depend on
//! a single name:
//!
//! * [`graph`] — graph substrate ([`bestk_graph`]): CSR storage, builders,
//!   I/O, synthetic generators.
//! * [`core`] — the paper's algorithms ([`bestk_core`]): core decomposition,
//!   vertex ordering, best k-core set, core forest, best single k-core.
//! * [`apps`] — downstream applications ([`bestk_apps`]): densest subgraph,
//!   maximum clique, size-constrained k-core.
//! * [`truss`] — the §VI-B extension ([`bestk_truss`]): truss decomposition
//!   and the best k-truss set.
//! * [`exec`] — the execution-policy runtime ([`bestk_exec`]): the shared
//!   parallel substrate every hot kernel routes through.
//! * [`delta`] — incremental maintenance ([`bestk_delta`]): edge-stream
//!   overlays, incremental coreness/best-k repair, and the write-ahead
//!   delta log.
//! * [`obs`] — the observability layer ([`bestk_obs`]): metrics registry,
//!   phase spans, and the injectable clock behind all timing reads.
//!
//! See `examples/` for runnable walkthroughs and `crates/bench` for the
//! evaluation harness that regenerates every table and figure of the paper.

#![forbid(unsafe_code)]

pub use bestk_apps as apps;
pub use bestk_core as core;
pub use bestk_delta as delta;
pub use bestk_exec as exec;
pub use bestk_graph as graph;
pub use bestk_obs as obs;
pub use bestk_truss as truss;
